//! Minimal JSON parsing and emission for the serving API.
//!
//! Hand-rolled (the workspace is hermetic), covering the full value
//! grammar with a recursion-depth cap. The parser returns `Err` on any
//! malformed document — never panics — because it runs on request
//! bodies straight off the network.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are all doubles here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a usize, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(word.as_bytes())) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect_byte(b':')?;
                    map.insert(key, self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or_default();
        let text = std::str::from_utf8(digits).map_err(|_| "non-UTF-8 number".to_string())?;
        let n: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(format!("non-finite number {text:?}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-UTF-8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired;
                            // the serving API never emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Decode one UTF-8 scalar starting here.
                    let rest = self.bytes.get(self.pos..).unwrap_or_default();
                    // mb-lint: allow(indexing) -- upper bound is rest.len().min(4) <= rest.len()
                    let chunk = std::str::from_utf8(&rest[..rest.len().min(4)]).or_else(|e| {
                        let valid = e.valid_up_to();
                        if valid == 0 {
                            Err("non-UTF-8 string bytes".to_string())
                        } else {
                            // mb-lint: allow(indexing) -- valid_up_to() <= slice len by contract
                            std::str::from_utf8(&rest[..valid])
                                .map_err(|_| "non-UTF-8 string bytes".to_string())
                        }
                    })?;
                    let c = chunk.chars().next().ok_or("non-UTF-8 string bytes")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_string());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(bytes: &[u8]) -> Result<Json, String> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos == bytes.len() {
        Ok(v)
    } else {
        Err(format!("trailing bytes after document at {}", p.pos))
    }
}

/// Quote and escape a string for a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as JSON (finite values only; callers guarantee this).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_link_request_shape() {
        let v =
            parse(br#"{"surface": "the dark magician", "left": "after \"the\" duel ", "k": 3}"#)
                .unwrap();
        assert_eq!(v.get("surface").and_then(Json::as_str), Some("the dark magician"));
        assert_eq!(v.get("left").and_then(Json::as_str), Some("after \"the\" duel "));
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(3));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"{\"a\" 1}",
            b"[1,]",
            b"\"unterminated",
            b"01x",
            b"{\"a\":1} trailing",
            b"nul",
            b"\x00",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "tab\t, quote \", backslash \\, newline\n, unicode \u{1F600}";
        let doc = escape(s);
        assert_eq!(parse(doc.as_bytes()).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let mut doc = String::new();
        for _ in 0..100 {
            doc.push('[');
        }
        assert!(parse(doc.as_bytes()).is_err());
    }
}
