//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately tiny: request line + headers + `Content-Length` bodies,
//! keep-alive by default, no chunked transfer encoding. Every limit is
//! explicit ([`HttpLimits`]) and every malformed input returns a typed
//! [`HttpError`] — a serving process must never panic on bytes from the
//! network (a property test feeds this parser arbitrary bytes).

use std::io::{BufRead, Read, Write};

/// Parser limits; exceeding any of them rejects the request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum request-line or header-line length in bytes.
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_line: 8 * 1024, max_headers: 64, max_body: 64 * 1024 }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request syntax; answer `400 Bad Request`.
    Bad(String),
    /// A configured limit was exceeded; answer `413 Content Too Large`.
    TooLarge(String),
    /// The underlying socket failed mid-request (including read
    /// timeouts); no response is possible.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "too large: {m}"),
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl HttpError {
    /// The HTTP status code this error maps to (0 for I/O errors,
    /// which get no response).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Bad(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Io(_) => 0,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/link`.
    pub path: String,
    /// Headers in order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one `\n`-terminated line of at most `max` bytes, without the
/// terminator. `Ok(None)` means clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = r.by_ref().take(max as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf).map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > max {
            HttpError::TooLarge(format!("line exceeds {max} bytes"))
        } else {
            HttpError::Bad("truncated line".to_string())
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some(buf))
}

fn ascii(bytes: Vec<u8>) -> Result<String, HttpError> {
    String::from_utf8(bytes).map_err(|_| HttpError::Bad("non-UTF-8 header bytes".to_string()))
}

/// Parse one request from the stream. `Ok(None)` means the peer closed
/// the connection cleanly between requests (normal keep-alive end).
pub fn read_request<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(r, limits.max_line)? else {
        return Ok(None);
    };
    let line = ascii(line)?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Bad(format!("malformed request line {line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Bad(format!("malformed method {method:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, limits.max_line)?
            .ok_or_else(|| HttpError::Bad("EOF inside headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge(format!("more than {} headers", limits.max_headers)));
        }
        let line = ascii(line)?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("header without colon: {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad(format!("malformed header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req =
        Request { method: method.to_string(), path: path.to_string(), headers, body: Vec::new() };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::Bad("transfer-encoding is not supported".to_string()));
    }
    if let Some(cl) = req.header("content-length") {
        let len: usize =
            cl.parse().map_err(|_| HttpError::Bad(format!("bad content-length {cl:?}")))?;
        if len > limits.max_body {
            return Err(HttpError::TooLarge(format!(
                "body of {len} bytes (cap {})",
                limits.max_body
            )));
        }
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(r, &mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Bad("truncated body".to_string())
            } else {
                HttpError::Io(e)
            }
        })?;
        req.body = body;
    }
    Ok(Some(req))
}

const fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `close` adds `Connection: close`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_ext(w, status, content_type, body, close, &[])
}

/// [`write_response`] with additional headers (name must be a valid
/// lowercase HTTP header name; the value must be line-break free) —
/// how 503 responses carry `Retry-After`.
pub fn write_response_ext(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /link HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/link");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_bad_content_length() {
        let e = parse(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let e = parse(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn rejects_truncated_headers_and_body() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nhost: x\r\n").unwrap_err().status(), 400);
        let e = parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        write_response_ext(
            &mut out,
            503,
            "application/json",
            b"{}",
            true,
            &[("retry-after", "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
