//! Property-based tests of the rewriter's guarantees.

use mb_check::{gen, prop_assert, prop_assert_eq, Gen};
use mb_common::Rng;
use mb_nlg::rewriter::{RewriteExample, Rewriter, RewriterConfig};
use mb_text::tfidf::TfIdf;
use mb_text::tokenize;

/// A 3–14 word sentence of 3–8 letter lowercase words.
fn sentence() -> impl Gen<Value = String> {
    gen::vec_of(gen::lowercase_string(3..=8), 3..15).map(|ws| ws.join(" "))
}

mb_check::check! {
    #![config(cases = 32)]

    fn rewrites_are_short_and_drawn_from_the_description(
        seed in gen::u64_in(0..500),
        desc in sentence(),
        title in gen::lowercase_string(3..=8),
    ) {
        let stats = TfIdf::fit([desc.as_str()]);
        let examples = vec![RewriteExample {
            description: desc.clone(),
            title: title.clone(),
            mention: tokenize(&desc).first().cloned().unwrap_or_default(),
        }];
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = RewriterConfig { epochs: 3, ..Default::default() };
        let rw = Rewriter::train(&examples, stats, cfg, &mut rng);
        if let Some(m) = rw.rewrite(&desc, &title, &mut rng) {
            let toks = tokenize(&m);
            prop_assert!(!toks.is_empty());
            prop_assert!(toks.len() <= cfg.max_len + 1, "mention too long: {m:?}");
            let desc_tokens: std::collections::HashSet<String> =
                tokenize(&desc).into_iter().collect();
            for t in toks {
                prop_assert!(
                    t == "the" || desc_tokens.contains(&t),
                    "token {t:?} not from the description"
                );
            }
        }
    }

    fn token_scores_cover_all_content_tokens(desc in sentence(), title in gen::lowercase_string(3..=8)) {
        let stats = TfIdf::fit([desc.as_str()]);
        let rw = Rewriter::train(&[], stats, RewriterConfig::default(), &mut Rng::seed_from_u64(1));
        let scored = rw.token_scores(&desc, &title);
        let distinct_content: std::collections::HashSet<String> = tokenize(&desc)
            .into_iter()
            .filter(|t| !mb_text::stopwords::is_stopword(t))
            .collect();
        prop_assert_eq!(scored.len(), distinct_content.len());
        for (t, pos, z) in scored {
            prop_assert!(distinct_content.contains(&t));
            prop_assert!(z.is_finite());
            prop_assert!(pos < tokenize(&desc).len());
        }
    }

    fn adaptation_is_monotone_in_corpus_size(
        docs in gen::vec_of(sentence(), 1..6),
    ) {
        let rw = Rewriter::train(
            &[],
            TfIdf::fit(["base corpus document"]),
            RewriterConfig::default(),
            &mut Rng::seed_from_u64(2),
        );
        let adapted = rw.adapt(docs.iter().map(String::as_str));
        prop_assert_eq!(
            adapted.stats().num_docs(),
            rw.stats().num_docs() + docs.len() as u64
        );
        // Weights are untouched by adaptation.
        prop_assert_eq!(rw.weights(), adapted.weights());
    }
}
