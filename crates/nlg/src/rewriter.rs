//! The learned extractive mention rewriter (T5 substitute).
//!
//! Training mirrors Eq. 1: source-domain (description → gold mention)
//! pairs supervise a logistic scorer over token-salience features.
//! Rewriting mirrors Eq. 2: given a target entity's description, the
//! scorer picks the most salient tokens and assembles a short mention.
//! The `syn → syn*` upgrade is [`Rewriter::adapt`]: re-estimating the
//! corpus statistics on unlabeled target-domain text, the behavioural
//! analogue of T5's unsupervised denoising fine-tune.

use crate::features::{candidates, label_for, NUM_FEATURES};
use mb_common::Rng;
use mb_tensor::optim::{Adam, Optimizer};
use mb_tensor::{init, Params, Tape, Tensor};
use mb_text::tfidf::TfIdf;

/// Rewriter hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct RewriterConfig {
    /// Training epochs for the logistic scorer.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Maximum tokens in a rewritten mention.
    pub max_len: usize,
    /// Probability of extending the mention by one more token
    /// (geometric length model, min 1).
    pub extend_p: f64,
    /// Probability of prefixing the mention with "the" (gold aliases in
    /// natural text are frequently determiner-led).
    pub the_p: f64,
    /// Candidates whose document frequency exceeds this fraction of the
    /// known corpus are excluded from rewrites: corpus-frequent
    /// connective jargon does not make a fluent mention. On the target
    /// domain this rule only has teeth once the statistics have been
    /// adapted on unlabeled target text (syn → syn*) — the behavioural
    /// analogue of T5's denoising fine-tune producing more fluent
    /// mentions with fewer errors.
    pub max_df_ratio: f64,
}

impl Default for RewriterConfig {
    fn default() -> Self {
        RewriterConfig {
            epochs: 30,
            lr: 0.1,
            max_len: 3,
            extend_p: 0.85,
            the_p: 0.8,
            max_df_ratio: 0.15,
        }
    }
}

/// A supervision example: an entity description and its gold mention.
#[derive(Debug, Clone)]
pub struct RewriteExample {
    /// The entity's description text.
    pub description: String,
    /// The entity's title (feature input).
    pub title: String,
    /// The gold mention surface.
    pub mention: String,
}

/// The trained rewriter.
#[derive(Debug, Clone)]
pub struct Rewriter {
    params: Params,
    stats: TfIdf,
    cfg: RewriterConfig,
}

impl Rewriter {
    /// Train the scorer on source-domain examples with corpus
    /// statistics `stats` (source-domain documents).
    pub fn train(
        examples: &[RewriteExample],
        stats: TfIdf,
        cfg: RewriterConfig,
        rng: &mut Rng,
    ) -> Self {
        // Build the (features, label) design matrix once.
        let mut rows: Vec<[f64; NUM_FEATURES]> = Vec::new();
        let mut labels: Vec<f64> = Vec::new();
        for ex in examples {
            for cand in candidates(&ex.description, &ex.title, &stats) {
                labels.push(label_for(&cand, &ex.mention));
                rows.push(cand.features);
            }
        }
        let mut params = Params::new();
        let w = params.add("w", init::xavier_uniform(NUM_FEATURES, 1, rng));
        let b = params.add("b", init::zeros_bias(1));
        if !rows.is_empty() {
            let n = rows.len();
            let flat: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
            let x = Tensor::from_vec(vec![n, NUM_FEATURES], flat);
            let mut opt = Adam::new(cfg.lr);
            for _ in 0..cfg.epochs {
                let mut tape = Tape::new();
                let vars = params.inject(&mut tape);
                let xv = tape.leaf(x.clone());
                let logits = tape.linear(xv, vars[w.index()], vars[b.index()]);
                let flat_logits = tape.reshape(logits, vec![n]);
                let losses = tape.bce_with_logits(flat_logits, labels.clone());
                let loss = tape.mean_all(losses);
                let grads = tape.backward(loss);
                let gv = params.collect_grads(&vars, &grads);
                opt.step(&mut params, &gv);
            }
        }
        Rewriter { params, stats, cfg }
    }

    /// Swap in adapted corpus statistics (`syn` → `syn*`): merge the
    /// unlabeled target documents into the statistics.
    pub fn adapt<'a>(&self, target_docs: impl IntoIterator<Item = &'a str>) -> Rewriter {
        let mut stats = self.stats.clone();
        let target = TfIdf::fit(target_docs);
        stats.merge(&target);
        Rewriter { params: self.params.clone(), stats, cfg: self.cfg }
    }

    /// Score every candidate token of a description (higher = more
    /// likely to belong in the mention).
    pub fn token_scores(&self, description: &str, title: &str) -> Vec<(String, usize, f64)> {
        let w = self.params.get(self.params.id_of("w").expect("w")).clone();
        let b = self.params.get(self.params.id_of("b").expect("b")).item();
        candidates(description, title, &self.stats)
            .into_iter()
            .map(|c| {
                let z: f64 = c.features.iter().zip(w.data()).map(|(f, wi)| f * wi).sum::<f64>() + b;
                (c.token, c.first_position, z)
            })
            .collect()
    }

    /// Rewrite: summarise a description into a short mention (Eq. 2).
    ///
    /// Picks the top-scoring tokens, orders them by description
    /// position, and optionally prefixes "the". Returns `None` when the
    /// description has no scorable content.
    pub fn rewrite(&self, description: &str, title: &str, rng: &mut Rng) -> Option<String> {
        let mut scored = self.token_scores(description, title);
        if scored.is_empty() {
            return None;
        }
        // Fluency rule: drop corpus-frequent tokens when enough remain.
        if self.stats.num_docs() > 0 {
            let n = self.stats.num_docs() as f64;
            let fluent: Vec<(String, usize, f64)> = scored
                .iter()
                .filter(|(t, _, _)| self.stats.df(t) as f64 / n <= self.cfg.max_df_ratio)
                .cloned()
                .collect();
            if !fluent.is_empty() {
                scored = fluent;
            }
        }
        scored.sort_by(|a, b| b.2.total_cmp(&a.2));
        let len = rng.length(1, self.cfg.max_len, self.cfg.extend_p).min(scored.len());
        let mut picked: Vec<(String, usize)> =
            scored.into_iter().take(len).map(|(t, pos, _)| (t, pos)).collect();
        picked.sort_by_key(|(_, pos)| *pos);
        let body = picked.into_iter().map(|(t, _)| t).collect::<Vec<_>>().join(" ");
        Some(if rng.chance(self.cfg.the_p) { format!("the {body}") } else { body })
    }

    /// The corpus statistics currently in use.
    pub fn stats(&self) -> &TfIdf {
        &self.stats
    }

    /// The learned feature weights (diagnostics).
    pub fn weights(&self) -> Vec<f64> {
        self.params.get(self.params.id_of("w").expect("w")).data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_set() -> (Vec<RewriteExample>, TfIdf) {
        // Gold mentions are the high-TFIDF repeated content words.
        let examples = vec![
            RewriteExample {
                description: "the dragon guards the crystal cavern where the dragon sleeps".into(),
                title: "Karvoth".into(),
                mention: "the dragon".into(),
            },
            RewriteExample {
                description: "a temple of shadows rises where the temple priests gather".into(),
                title: "Velm".into(),
                mention: "the temple".into(),
            },
            RewriteExample {
                description: "the phaser rifle hums as the phaser charge builds".into(),
                title: "Mark IX".into(),
                mention: "the phaser".into(),
            },
            RewriteExample {
                description: "every duel begins when the duel disk unfolds".into(),
                title: "Obelisk".into(),
                mention: "the duel".into(),
            },
        ];
        let stats = TfIdf::fit(examples.iter().map(|e| e.description.as_str()));
        (examples, stats)
    }

    #[test]
    fn learns_to_pick_salient_repeated_tokens() {
        let (examples, stats) = training_set();
        let mut rng = Rng::seed_from_u64(1);
        let rw = Rewriter::train(&examples, stats, RewriterConfig::default(), &mut rng);
        // On a held-out description of the same shape, the repeated
        // content word should outscore one-off fillers.
        let scores = rw.token_scores(
            "the starship cruised while the starship engines flared brightly",
            "Enterprise",
        );
        let starship = scores.iter().find(|(t, _, _)| t == "starship").unwrap().2;
        let flared = scores.iter().find(|(t, _, _)| t == "flared").unwrap().2;
        assert!(starship > flared, "starship {starship} <= flared {flared}");
    }

    #[test]
    fn rewrite_produces_short_in_description_mentions() {
        let (examples, stats) = training_set();
        let mut rng = Rng::seed_from_u64(2);
        let rw = Rewriter::train(&examples, stats, RewriterConfig::default(), &mut rng);
        let desc = "the warp core pulses while the warp field holds the nacelles";
        for _ in 0..20 {
            let m = rw.rewrite(desc, "Core Unit", &mut rng).unwrap();
            let toks = mb_text::tokenize(&m);
            assert!(!toks.is_empty() && toks.len() <= 4, "mention {m:?}");
            for t in toks {
                assert!(t == "the" || desc.contains(&t), "token {t:?} not from the description");
            }
        }
    }

    #[test]
    fn rewrite_empty_description_is_none() {
        let (examples, stats) = training_set();
        let mut rng = Rng::seed_from_u64(3);
        let rw = Rewriter::train(&examples, stats, RewriterConfig::default(), &mut rng);
        assert!(rw.rewrite("", "x", &mut rng).is_none());
        assert!(rw.rewrite("the of and", "x", &mut rng).is_none());
    }

    #[test]
    fn adaptation_changes_statistics_not_weights() {
        let (examples, stats) = training_set();
        let mut rng = Rng::seed_from_u64(4);
        let rw = Rewriter::train(&examples, stats, RewriterConfig::default(), &mut rng);
        let adapted = rw.adapt(["brand new target words appear here", "target words again"]);
        assert_eq!(rw.weights(), adapted.weights());
        assert!(adapted.stats().num_docs() > rw.stats().num_docs());
        // A target-frequent word gets a lower idf after adaptation.
        assert!(adapted.stats().idf("target") < rw.stats().idf("target"));
    }

    #[test]
    fn trains_on_empty_examples_without_panicking() {
        let mut rng = Rng::seed_from_u64(5);
        let rw = Rewriter::train(&[], TfIdf::new(), RewriterConfig::default(), &mut rng);
        // Untrained but still functional.
        let out = rw.rewrite("some random description words", "t", &mut rng);
        assert!(out.is_some());
    }
}
