//! Token salience features for the extractive rewriter.

use mb_text::stopwords::is_stopword;
use mb_text::tfidf::TfIdf;
use mb_text::tokenizer::tokenize;
use std::collections::BTreeSet;

/// Number of features per candidate token.
pub const NUM_FEATURES: usize = 6;

/// A description token considered for inclusion in a rewritten mention.
#[derive(Debug, Clone)]
pub struct TokenCandidate {
    /// The token string.
    pub token: String,
    /// Index of first occurrence in the description.
    pub first_position: usize,
    /// Feature vector (length [`NUM_FEATURES`]).
    pub features: [f64; NUM_FEATURES],
}

/// Extract candidate tokens of a description with their features.
///
/// Stopwords and repeats are collapsed; candidates are returned in
/// first-occurrence order.
pub fn candidates(description: &str, title: &str, stats: &TfIdf) -> Vec<TokenCandidate> {
    let tokens = tokenize(description);
    if tokens.is_empty() {
        return Vec::new();
    }
    let title_tokens: BTreeSet<String> = tokenize(title).into_iter().collect();
    let n = tokens.len() as f64;
    // Term frequencies.
    let mut tf: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for t in &tokens {
        *tf.entry(t.as_str()).or_insert(0) += 1;
    }
    // Max TF-IDF for normalisation.
    let max_w = tokens.iter().map(|t| tf[t.as_str()] as f64 * stats.idf(t)).fold(1e-12, f64::max);

    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (pos, t) in tokens.iter().enumerate() {
        if is_stopword(t) || !seen.insert(t.clone()) {
            continue;
        }
        let tfidf = tf[t.as_str()] as f64 * stats.idf(t) / max_w;
        let in_title = if title_tokens.contains(t) { 1.0 } else { 0.0 };
        let early = 1.0 - pos as f64 / n;
        let repeated = if tf[t.as_str()] > 1 { 1.0 } else { 0.0 };
        // Rarity: idf relative to the maximum possible idf of this
        // corpus (a never-seen token). Corpus-frequent connective
        // jargon scores low — but only once the statistics have seen
        // the corpus, which is exactly what the target adaptation
        // (syn → syn*) contributes.
        let max_idf = ((1.0 + stats.num_docs() as f64).ln() + 1.0).max(1.0);
        let rarity = (stats.idf(t) / max_idf).min(1.0);
        let length = (t.chars().count() as f64 / 12.0).min(1.0);
        out.push(TokenCandidate {
            token: t.clone(),
            first_position: pos,
            features: [tfidf, in_title, early, repeated, rarity, length],
        });
    }
    out
}

/// Label a candidate: does it appear in the gold mention surface?
pub fn label_for(candidate: &TokenCandidate, gold_mention: &str) -> f64 {
    let gold: BTreeSet<String> = tokenize(gold_mention).into_iter().collect();
    if gold.contains(&candidate.token) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TfIdf {
        TfIdf::fit([
            "the dragon guards the dark temple",
            "the knight rode to the temple",
            "a dragon breathes fire in the mountains",
            "the village by the river",
        ])
    }

    #[test]
    fn excludes_stopwords_and_dedups() {
        let c = candidates("the dragon and the dragon temple", "Dragon King", &stats());
        let toks: Vec<&str> = c.iter().map(|x| x.token.as_str()).collect();
        assert_eq!(toks, vec!["dragon", "temple"]);
    }

    #[test]
    fn features_are_bounded() {
        let c = candidates(
            "the dragon guards a gleaming crystal near the temple ruins",
            "Crystal (item)",
            &stats(),
        );
        for cand in &c {
            for f in cand.features {
                assert!((0.0..=1.0).contains(&f), "feature {f} out of range for {:?}", cand.token);
            }
        }
        // in_title fires for "crystal".
        let crystal = c.iter().find(|x| x.token == "crystal").unwrap();
        assert_eq!(crystal.features[1], 1.0);
        let dragon = c.iter().find(|x| x.token == "dragon").unwrap();
        assert_eq!(dragon.features[1], 0.0);
    }

    #[test]
    fn repeated_tokens_flagged() {
        let c = candidates("dragon dragon temple", "x", &stats());
        let dragon = c.iter().find(|x| x.token == "dragon").unwrap();
        assert_eq!(dragon.features[3], 1.0);
        let temple = c.iter().find(|x| x.token == "temple").unwrap();
        assert_eq!(temple.features[3], 0.0);
    }

    #[test]
    fn labels_match_gold_tokens() {
        let c = candidates("the shadow crystal glows", "the shadow item", &stats());
        let shadow = c.iter().find(|x| x.token == "shadow").unwrap();
        let glows = c.iter().find(|x| x.token == "glows").unwrap();
        assert_eq!(label_for(shadow, "the shadow item"), 1.0);
        assert_eq!(label_for(glows, "the shadow item"), 0.0);
    }

    #[test]
    fn empty_description_yields_nothing() {
        assert!(candidates("", "t", &stats()).is_empty());
        assert!(candidates("the a an", "t", &stats()).is_empty());
    }
}
