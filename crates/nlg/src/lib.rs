//! # mb-nlg
//!
//! Weak supervision for the target domain (the left half of the paper's
//! Figure 2): **exact matching** plus **mention rewriting**.
//!
//! The paper rewrites mentions with a T5 model fine-tuned on a
//! `summarize:` task over source-domain (description → mention) pairs,
//! optionally adapted to the target domain with an unsupervised
//! denoising objective (producing the better `syn*` data). T5 is not
//! runnable on this substrate, so the rewriter here is the closest
//! behavioural equivalent: a **learned extractive summariser** — a
//! logistic scorer over TF-IDF / position / surface features, trained on
//! the same source-domain supervision, whose "denoising adaptation" is a
//! re-estimation of corpus statistics on unlabeled target text. It
//! reproduces the three properties the rest of the system depends on:
//! rewritten mentions (a) differ from titles, (b) are drawn from the
//! description's salient content, and (c) move closer to the gold
//! mention distribution, with `syn*` closer than `syn` (Table XI).

#![warn(missing_docs)]

pub mod exact_match;
pub mod features;
pub mod generate;
pub mod rewriter;

pub use exact_match::exact_match_pairs;
pub use generate::{generate_syn, SynDataset, SynPair, SynSource};
pub use rewriter::{Rewriter, RewriterConfig};
