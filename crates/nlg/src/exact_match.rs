//! Exact ("name") matching — the first stage of synthetic supervision.
//!
//! Following Le et al. (and the paper's Section IV-A), mentions in
//! unlabeled target text whose surface matches an entity title exactly
//! are linked to that entity. This yields *trivial* pairs (mention ==
//! title → surface-shortcut bias) and a small number of *wrong* pairs:
//! a surface that equals the bare base of an ambiguity group links to
//! the bare-base entity even when the text is about the disambiguated
//! sibling (the Table II failure mode). Both defects are exactly what
//! mention rewriting and meta-learning repair downstream.

use crate::generate::{SynPair, SynSource};
use mb_common::Rng;
use mb_datagen::mentions::generate_mentions;
use mb_datagen::world::{DomainInfo, World};

/// Scan `volume` occurrences of in-domain text for title matches.
///
/// The occurrences are drawn from the same generative process as gold
/// mentions (they *are* real usages — we just pretend the labels are
/// unknown and recover them by name matching). Each pair records the
/// matched label and, for noise-analysis harnesses only, the true
/// entity. Occurrences whose surface matches no in-domain title are
/// discarded, exactly like the heuristic in the paper.
pub fn exact_match_pairs(
    world: &World,
    domain: &DomainInfo,
    volume: usize,
    rng: &mut Rng,
) -> Vec<SynPair> {
    let occurrences = generate_mentions(world, domain, volume, rng);
    let mut out = Vec::new();
    for occ in occurrences.mentions {
        let hits = world.kb().by_title(&occ.surface);
        // Restrict to the target domain's dictionary.
        let hit = hits.iter().copied().find(|&id| world.kb().entity(id).domain == domain.id);
        let Some(matched) = hit else { continue };
        let true_entity = occ.entity;
        let mut mention = occ;
        mention.entity = matched;
        // Category must reflect the *labeled* entity's title.
        mention.category =
            mb_text::overlap::classify(&mention.surface, &world.kb().entity(matched).title);
        out.push(SynPair { mention, true_entity, source: SynSource::ExactMatch });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::{World, WorldConfig};
    use mb_text::OverlapCategory;

    fn setup() -> (World, Vec<SynPair>) {
        let world = World::generate(WorldConfig::tiny(31));
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(4);
        let pairs = exact_match_pairs(&world, &domain, 600, &mut rng);
        (world, pairs)
    }

    #[test]
    fn produces_pairs_with_title_matching_surfaces() {
        let (world, pairs) = setup();
        assert!(pairs.len() > 30, "only {} exact-match pairs", pairs.len());
        for p in &pairs {
            let hits = world.kb().by_title(&p.mention.surface);
            assert!(hits.contains(&p.mention.entity));
        }
    }

    #[test]
    fn labels_are_high_overlap_against_matched_title() {
        let (_, pairs) = setup();
        for p in &pairs {
            assert_eq!(p.mention.category, OverlapCategory::HighOverlap);
        }
    }

    #[test]
    fn contains_organic_noise_from_ambiguity_groups() {
        let (_, pairs) = setup();
        let wrong = pairs.iter().filter(|p| p.mention.entity != p.true_entity).count();
        // Ambiguity groups guarantee some mislinks, but they must be the
        // minority.
        assert!(wrong > 0, "expected some wrong exact matches");
        assert!(wrong * 3 < pairs.len(), "{wrong}/{} wrong matches", pairs.len());
    }

    #[test]
    fn low_overlap_usages_are_dropped() {
        let (world, pairs) = setup();
        // No surviving pair has a surface that is a Low Overlap alias of
        // its matched entity.
        for p in &pairs {
            let title = &world.kb().entity(p.mention.entity).title;
            assert_ne!(
                mb_text::overlap::classify(&p.mention.surface, title),
                OverlapCategory::LowOverlap
            );
        }
    }

    #[test]
    fn deterministic() {
        let world = World::generate(WorldConfig::tiny(31));
        let domain = world.domain("TargetX").clone();
        let a = exact_match_pairs(&world, &domain, 100, &mut Rng::seed_from_u64(9));
        let b = exact_match_pairs(&world, &domain, 100, &mut Rng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mention, y.mention);
        }
    }
}
