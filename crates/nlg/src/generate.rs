//! The full synthetic-supervision pipeline (Algorithm 2, steps 1–2).
//!
//! Step 1 generates exact-match pairs; step 2 rewrites each pair's
//! mention with the trained rewriter, splicing the new surface into the
//! same context (Figure 3). The output is the `syn` (or, with an
//! adapted rewriter, `syn*`) dataset used to train the linker.

use crate::exact_match::exact_match_pairs;
use crate::rewriter::{RewriteExample, Rewriter, RewriterConfig};
use mb_common::Rng;
use mb_datagen::corpus::unlabeled_documents;
use mb_datagen::mentions::LinkedMention;
use mb_datagen::world::{DomainInfo, DomainRole, World};
use mb_kb::EntityId;
use mb_text::tfidf::TfIdf;

/// How a synthetic pair was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynSource {
    /// Name matching only.
    ExactMatch,
    /// Exact match followed by mention rewriting.
    Rewritten,
}

/// A synthetic entity–mention pair.
#[derive(Debug, Clone)]
pub struct SynPair {
    /// The pair: `mention.entity` is the (weak) label used for
    /// training.
    pub mention: LinkedMention,
    /// The entity the underlying text was actually generated about —
    /// used only by noise-analysis harnesses, never by training.
    pub true_entity: EntityId,
    /// Provenance.
    pub source: SynSource,
}

impl SynPair {
    /// True if the weak label disagrees with the generating entity.
    pub fn is_mislabeled(&self) -> bool {
        self.mention.entity != self.true_entity
    }
}

/// A generated synthetic dataset for one target domain.
#[derive(Debug, Clone)]
pub struct SynDataset {
    /// Domain name.
    pub domain: String,
    /// Exact-match pairs (the paper's "Exact Match" training source).
    pub exact: Vec<SynPair>,
    /// Rewritten pairs (the paper's "syn" / "syn*" training source).
    pub rewritten: Vec<SynPair>,
}

impl SynDataset {
    /// Fraction of mislabeled pairs among the rewritten data.
    pub fn noise_rate(&self) -> f64 {
        if self.rewritten.is_empty() {
            return 0.0;
        }
        self.rewritten.iter().filter(|p| p.is_mislabeled()).count() as f64
            / self.rewritten.len() as f64
    }
}

/// Train the rewriter on all source (Train-role) domains of a world:
/// gold mentions supply (description → mention) supervision, and the
/// source corpora supply the TF-IDF statistics (Eq. 1).
pub fn train_source_rewriter(
    world: &World,
    source_mentions: &[(String, Vec<LinkedMention>)],
    cfg: RewriterConfig,
    rng: &mut Rng,
) -> Rewriter {
    let mut examples = Vec::new();
    for (_, mentions) in source_mentions {
        for m in mentions {
            let e = world.kb().entity(m.entity);
            examples.push(RewriteExample {
                description: e.description.clone(),
                title: e.title.clone(),
                mention: m.surface.clone(),
            });
        }
    }
    // Corpus statistics from the source domains' unlabeled text.
    let mut stats = TfIdf::new();
    let mut doc_rng = rng.split(0x0D0C);
    for d in world.domains_with_role(DomainRole::Train) {
        for doc in unlabeled_documents(world, d, 150, &mut doc_rng) {
            stats.add_document(&doc);
        }
    }
    Rewriter::train(&examples, stats, cfg, rng)
}

/// Rewrite the mentions of exact-match pairs (Figure 3): the new
/// surface replaces the original in the same context; the weak label is
/// unchanged. Pairs whose description yields no rewrite are kept
/// verbatim.
pub fn rewrite_pairs(
    world: &World,
    pairs: &[SynPair],
    rewriter: &Rewriter,
    rng: &mut Rng,
) -> Vec<SynPair> {
    pairs
        .iter()
        .map(|p| {
            let labeled = world.kb().entity(p.mention.entity);
            match rewriter.rewrite(&labeled.description, &labeled.title, rng) {
                Some(surface) => SynPair {
                    mention: p.mention.with_surface(surface, &labeled.title),
                    true_entity: p.true_entity,
                    source: SynSource::Rewritten,
                },
                None => p.clone(),
            }
        })
        .collect()
}

/// Run the whole pipeline for one target domain: exact matching over
/// `volume` text occurrences, then rewriting.
pub fn generate_syn(
    world: &World,
    domain: &DomainInfo,
    rewriter: &Rewriter,
    volume: usize,
    rng: &mut Rng,
) -> SynDataset {
    let exact = exact_match_pairs(world, domain, volume, rng);
    let rewritten = rewrite_pairs(world, &exact, rewriter, rng);
    SynDataset { domain: domain.name.clone(), exact, rewritten }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::mentions::generate_mentions;
    use mb_datagen::{World, WorldConfig};
    use mb_text::rouge::paired_rouge1_f1;

    /// Pair every synthetic mention with each gold mention of the same
    /// entity (Table XI's distribution-similarity measurement).
    fn entity_pairs<'a>(syn: &'a [SynPair], gold: &'a [LinkedMention]) -> Vec<(&'a str, &'a str)> {
        let mut out = Vec::new();
        for p in syn {
            for g in gold.iter().filter(|g| g.entity == p.mention.entity) {
                out.push((p.mention.surface.as_str(), g.surface.as_str()));
            }
        }
        out
    }

    fn setup() -> (World, Rewriter) {
        let world = World::generate(WorldConfig::tiny(37));
        let mut rng = Rng::seed_from_u64(5);
        let source_mentions: Vec<(String, Vec<LinkedMention>)> = world
            .domains_with_role(DomainRole::Train)
            .iter()
            .map(|d| {
                let ms = generate_mentions(&world, d, 120, &mut rng);
                (d.name.clone(), ms.mentions)
            })
            .collect();
        let rewriter =
            train_source_rewriter(&world, &source_mentions, RewriterConfig::default(), &mut rng);
        (world, rewriter)
    }

    #[test]
    fn pipeline_produces_rewritten_majority() {
        let (world, rewriter) = setup();
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(6);
        let syn = generate_syn(&world, &domain, &rewriter, 500, &mut rng);
        assert!(!syn.exact.is_empty());
        assert_eq!(syn.exact.len(), syn.rewritten.len());
        let rewritten_count =
            syn.rewritten.iter().filter(|p| p.source == SynSource::Rewritten).count();
        assert!(
            rewritten_count * 10 >= syn.rewritten.len() * 9,
            "only {rewritten_count}/{} rewritten",
            syn.rewritten.len()
        );
    }

    #[test]
    fn rewriting_breaks_the_surface_shortcut() {
        let (world, rewriter) = setup();
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(7);
        let syn = generate_syn(&world, &domain, &rewriter, 400, &mut rng);
        let high_overlap_exact = syn
            .exact
            .iter()
            .filter(|p| p.mention.category == mb_text::OverlapCategory::HighOverlap)
            .count();
        let high_overlap_rewritten = syn
            .rewritten
            .iter()
            .filter(|p| p.mention.category == mb_text::OverlapCategory::HighOverlap)
            .count();
        assert_eq!(high_overlap_exact, syn.exact.len());
        assert!(
            high_overlap_rewritten * 2 < syn.rewritten.len(),
            "{high_overlap_rewritten}/{} rewritten pairs still high-overlap",
            syn.rewritten.len()
        );
    }

    #[test]
    fn rewritten_mentions_closer_to_gold_distribution_than_exact() {
        let (world, rewriter) = setup();
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(8);
        let syn = generate_syn(&world, &domain, &rewriter, 400, &mut rng);
        // Gold mentions from the same domain, paired per entity.
        let gold = generate_mentions(&world, &domain, 400, &mut rng);
        let r_exact = paired_rouge1_f1(&entity_pairs(&syn.exact, &gold.mentions));
        let r_syn = paired_rouge1_f1(&entity_pairs(&syn.rewritten, &gold.mentions));
        assert!(
            r_syn > r_exact,
            "ROUGE-1: syn {r_syn:.3} should beat exact {r_exact:.3} (Table XI shape)"
        );
    }

    #[test]
    fn adaptation_helps_or_matches_on_target() {
        let (world, rewriter) = setup();
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(9);
        let docs = unlabeled_documents(&world, &domain, 200, &mut rng);
        let adapted = rewriter.adapt(docs.iter().map(String::as_str));
        let syn = generate_syn(&world, &domain, &rewriter, 300, &mut Rng::seed_from_u64(10));
        let syn_star = generate_syn(&world, &domain, &adapted, 300, &mut Rng::seed_from_u64(10));
        let gold = generate_mentions(&world, &domain, 400, &mut Rng::seed_from_u64(11));
        let r = paired_rouge1_f1(&entity_pairs(&syn.rewritten, &gold.mentions));
        let rs = paired_rouge1_f1(&entity_pairs(&syn_star.rewritten, &gold.mentions));
        // syn* should not be worse by more than noise.
        assert!(rs > r - 0.02, "syn* {rs:.3} much worse than syn {r:.3}");
    }

    #[test]
    fn noise_rate_is_small_but_nonzero() {
        let (world, rewriter) = setup();
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(12);
        let syn = generate_syn(&world, &domain, &rewriter, 600, &mut rng);
        let rate = syn.noise_rate();
        assert!(rate > 0.0, "expected organic noise");
        assert!(rate < 0.4, "noise rate {rate} implausibly high");
    }
}
