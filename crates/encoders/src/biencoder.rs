//! The bi-encoder (candidate-generation stage).
//!
//! Two small encoders over a shared token-embedding table:
//!
//! ```text
//! mᵢ = normalize(W₂ᵐ tanh(W₁ᵐ · meanpool(E[tokens(mᵢ, ctx)]) + b₁ᵐ) + b₂ᵐ)   (Eq. 3)
//! eᵢ = normalize(W₂ᵉ tanh(W₁ᵉ · meanpool(E[tokens(eᵢ, desp)]) + b₁ᵉ) + b₂ᵉ)   (Eq. 4)
//! S(mᵢ, eⱼ) = τ · mᵢ · eⱼ                                                    (Eq. 5)
//! ```
//!
//! trained with the in-batch negative loss of Eq. 6. The temperature τ
//! (`score_scale`) compensates for normalised vectors; rankings are
//! unaffected.

use crate::input::TrainPair;
use mb_common::Rng;
use mb_par::Threads;
use mb_tensor::optim::Optimizer;
use mb_tensor::params::{GradVec, ParamId};
use mb_tensor::{init, Params, QuantMode, Tape, Tensor, Var};
use mb_text::Vocab;

/// Rows per worker task in the chunked-parallel embed path. Fixed by
/// the data (never by the worker count) so chunk boundaries — and with
/// them every floating-point result — are identical at any thread
/// count.
pub const EMBED_CHUNK: usize = 32;

/// Bi-encoder hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BiEncoderConfig {
    /// Token embedding dimension.
    pub emb_dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Output vector dimension.
    pub out_dim: usize,
    /// Score temperature τ multiplying the cosine similarity.
    pub score_scale: f64,
    /// Use the paper's Eq. 6 (gold excluded from the denominator).
    /// `false` selects standard in-batch softmax cross-entropy — kept
    /// for the loss ablation.
    pub exclude_gold_in_loss: bool,
    /// Initialise the encoder heads near identity, so the untrained
    /// model matches mentions to entities through shared token
    /// embeddings — the substitute for BERT's transferable pretrained
    /// representations (requires `emb_dim == hidden == out_dim`).
    pub identity_init: bool,
}

impl Default for BiEncoderConfig {
    fn default() -> Self {
        BiEncoderConfig {
            emb_dim: 32,
            hidden: 32,
            out_dim: 32,
            score_scale: 8.0,
            exclude_gold_in_loss: true,
            identity_init: true,
        }
    }
}

/// Parameter handles of one encoder side (shared with the frozen
/// serving encoder, which replays the same ids against a
/// [`mb_tensor::FrozenParams`] snapshot).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SideIds {
    pub(crate) w1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) w2: ParamId,
    pub(crate) b2: ParamId,
}

/// The bi-encoder model.
#[derive(Debug, Clone)]
pub struct BiEncoder {
    cfg: BiEncoderConfig,
    params: Params,
    emb: ParamId,
    mention_side: SideIds,
    entity_side: SideIds,
    vocab_len: usize,
}

impl BiEncoder {
    /// Initialise a bi-encoder for the given vocabulary.
    pub fn new(vocab: &Vocab, cfg: BiEncoderConfig, rng: &mut Rng) -> Self {
        assert!(cfg.emb_dim > 0 && cfg.hidden > 0 && cfg.out_dim > 0);
        if cfg.identity_init {
            assert!(
                cfg.emb_dim == cfg.hidden && cfg.hidden == cfg.out_dim,
                "identity_init requires emb_dim == hidden == out_dim, got {}/{}/{}",
                cfg.emb_dim,
                cfg.hidden,
                cfg.out_dim
            );
        }
        let mut params = Params::new();
        let emb = params.add("emb", init::embedding(vocab.len(), cfg.emb_dim, rng));
        let side = |prefix: &str, params: &mut Params, rng: &mut Rng| {
            let (w1, w2) = if cfg.identity_init {
                // Mild noise keeps the two sides from being exactly
                // symmetric while preserving the bag-matching behaviour.
                (
                    init::near_identity(cfg.emb_dim, 0.9, 0.02, rng),
                    init::near_identity(cfg.emb_dim, 0.9, 0.02, rng),
                )
            } else {
                (
                    init::xavier_uniform(cfg.emb_dim, cfg.hidden, rng),
                    init::xavier_uniform(cfg.hidden, cfg.out_dim, rng),
                )
            };
            SideIds {
                w1: params.add(format!("{prefix}.w1"), w1),
                b1: params.add(format!("{prefix}.b1"), init::zeros_bias(cfg.hidden)),
                w2: params.add(format!("{prefix}.w2"), w2),
                b2: params.add(format!("{prefix}.b2"), init::zeros_bias(cfg.out_dim)),
            }
        };
        let mention_side = side("mention", &mut params, rng);
        let entity_side = side("entity", &mut params, rng);
        BiEncoder { cfg, params, emb, mention_side, entity_side, vocab_len: vocab.len() }
    }

    /// The model's configuration.
    pub fn config(&self) -> &BiEncoderConfig {
        &self.cfg
    }

    /// Borrow the parameters (for checkpointing).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutably borrow the parameters (for optimizer steps).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Replace the parameters (e.g. restoring a checkpoint).
    ///
    /// # Panics
    /// Panics if the shapes don't match the current model.
    pub fn set_params(&mut self, params: Params) {
        assert_eq!(params.len(), self.params.len(), "set_params: layout mismatch");
        for ((na, ta), (nb, tb)) in params.iter().zip(self.params.iter()) {
            assert_eq!(na, nb, "set_params: name mismatch");
            assert_eq!(ta.shape(), tb.shape(), "set_params: shape mismatch for {na}");
        }
        self.params = params;
    }

    fn encode_side(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        side: SideIds,
        bags: Vec<Vec<u32>>,
    ) -> Var {
        let pooled = tape.bag_embed(vars[self.emb_var_index()], bags);
        let h = tape.linear(pooled, vars[side.w1.index()], vars[side.b1.index()]);
        let h = tape.tanh(h);
        let out = tape.linear(h, vars[side.w2.index()], vars[side.b2.index()]);
        tape.row_l2_normalize(out, 1e-9)
    }

    fn emb_var_index(&self) -> usize {
        self.emb.index()
    }

    /// Build the forward graph for a batch of pairs, returning the
    /// injected parameter vars, the mention/entity encodings, and the
    /// per-example Eq. 6 losses.
    ///
    /// # Panics
    /// Panics on an empty batch, or a batch of one pair when the config
    /// excludes gold from the denominator (Eq. 6 needs a negative).
    pub fn forward_losses(&self, tape: &mut Tape, batch: &[TrainPair]) -> BiForward {
        assert!(!batch.is_empty(), "forward_losses: empty batch");
        let vars = self.params.inject(tape);
        let m_bags: Vec<Vec<u32>> = batch.iter().map(|p| p.mention.clone()).collect();
        let e_bags: Vec<Vec<u32>> = batch.iter().map(|p| p.entity.clone()).collect();
        let m_enc = self.encode_side(tape, &vars, self.mention_side, m_bags);
        let e_enc = self.encode_side(tape, &vars, self.entity_side, e_bags);
        let raw_scores = tape.matmul_t(m_enc, e_enc);
        let scores = tape.scale(raw_scores, self.cfg.score_scale);
        let exclude = self.cfg.exclude_gold_in_loss && batch.len() >= 2;
        let losses = tape.in_batch_neg_loss(scores, exclude);
        BiForward { vars, mentions: m_enc, entities: e_enc, scores, losses }
    }

    /// Like [`BiEncoder::forward_losses`], with extra entity bags
    /// appended as additional negatives: the score matrix becomes
    /// `[n, n + extras]` and each row's loss is softmax cross-entropy
    /// against its diagonal gold (the standard hard-negative in-batch
    /// formulation of BLINK's second training stage).
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn forward_losses_with_negatives(
        &self,
        tape: &mut Tape,
        batch: &[TrainPair],
        extra_entity_bags: Vec<Vec<u32>>,
    ) -> (Vec<Var>, Var) {
        assert!(!batch.is_empty(), "forward_losses_with_negatives: empty batch");
        let vars = self.params.inject(tape);
        let m_bags: Vec<Vec<u32>> = batch.iter().map(|p| p.mention.clone()).collect();
        let mut e_bags: Vec<Vec<u32>> = batch.iter().map(|p| p.entity.clone()).collect();
        e_bags.extend(extra_entity_bags);
        let m_enc = self.encode_side(tape, &vars, self.mention_side, m_bags);
        let e_enc = self.encode_side(tape, &vars, self.entity_side, e_bags);
        let raw_scores = tape.matmul_t(m_enc, e_enc);
        let scores = tape.scale(raw_scores, self.cfg.score_scale);
        let targets: Vec<usize> = (0..batch.len()).collect();
        let losses = tape.softmax_ce_rows(scores, targets);
        (vars, losses)
    }

    /// One optimizer step on a batch augmented with extra negatives;
    /// returns the mean loss.
    pub fn train_step_with_negatives(
        &mut self,
        batch: &[TrainPair],
        extra_entity_bags: Vec<Vec<u32>>,
        opt: &mut dyn Optimizer,
    ) -> f64 {
        let mut tape = Tape::new();
        let (vars, losses) =
            self.forward_losses_with_negatives(&mut tape, batch, extra_entity_bags);
        let mean = tape.mean_all(losses);
        let value = tape.value(mean).item();
        let grads = tape.backward(mean);
        let gv = self.params.collect_grads(&vars, &grads);
        opt.step(&mut self.params, &gv);
        value
    }

    /// Mean loss over a batch (diagnostic convenience).
    pub fn batch_loss(&self, batch: &[TrainPair]) -> f64 {
        let mut tape = Tape::new();
        let fwd = self.forward_losses(&mut tape, batch);
        tape.value(fwd.losses).mean()
    }

    /// Gradient of the mean batch loss, for plain training steps.
    pub fn batch_grad(&self, batch: &[TrainPair]) -> (f64, GradVec) {
        let mut tape = Tape::new();
        let fwd = self.forward_losses(&mut tape, batch);
        let mean = tape.mean_all(fwd.losses);
        let loss = tape.value(mean).item();
        let grads = tape.backward(mean);
        (loss, self.params.collect_grads(&fwd.vars, &grads))
    }

    /// Apply one optimizer step on a batch; returns the mean loss.
    pub fn train_step(&mut self, batch: &[TrainPair], opt: &mut dyn Optimizer) -> f64 {
        let (loss, grads) = self.batch_grad(batch);
        opt.step(&mut self.params, &grads);
        loss
    }

    /// Encode mention bags to vectors (inference).
    pub fn embed_mentions(&self, bags: Vec<Vec<u32>>) -> Tensor {
        self.embed(bags, self.mention_side)
    }

    /// Encode entity bags to vectors (inference).
    pub fn embed_entities(&self, bags: Vec<Vec<u32>>) -> Tensor {
        self.embed(bags, self.entity_side)
    }

    /// Batched mention encoding — the serving entry point.
    ///
    /// One fused forward over the whole batch: the tape is built once
    /// and the parameters (including the full token-embedding table)
    /// are injected once, so the per-call overhead is amortised across
    /// all `bags`. Row `i` of the result is bit-identical to
    /// `embed_mentions(vec![bags[i].clone()]).row(0)` — every tensor op
    /// in the encoder is row-independent.
    pub fn embed_mentions_batch(&self, bags: &[Vec<u32>]) -> Tensor {
        self.embed(bags.to_vec(), self.mention_side)
    }

    /// Batched entity encoding (see [`BiEncoder::embed_mentions_batch`]);
    /// used to precompute a serving entity table.
    pub fn embed_entities_batch(&self, bags: &[Vec<u32>]) -> Tensor {
        self.embed(bags.to_vec(), self.entity_side)
    }

    /// [`BiEncoder::embed_mentions_batch`] with fixed-size chunks of
    /// bags encoded on separate workers.
    ///
    /// Every op in the encoder (bag lookup, linear, tanh, row
    /// normalisation) computes each output row from its input row
    /// alone, so the chunked forward is bit-identical to the fused one
    /// — and, because the chunk size is [`EMBED_CHUNK`] regardless of
    /// the worker count, bit-identical at every [`Threads`] value.
    pub fn embed_mentions_batch_with(&self, bags: &[Vec<u32>], threads: Threads) -> Tensor {
        self.embed_chunked(bags, self.mention_side, threads)
    }

    /// [`BiEncoder::embed_entities_batch`] with fixed-size chunks of
    /// bags encoded on separate workers (see
    /// [`BiEncoder::embed_mentions_batch_with`]).
    pub fn embed_entities_batch_with(&self, bags: &[Vec<u32>], threads: Threads) -> Tensor {
        self.embed_chunked(bags, self.entity_side, threads)
    }

    fn embed_chunked(&self, bags: &[Vec<u32>], side: SideIds, threads: Threads) -> Tensor {
        if threads.is_single() || bags.len() <= EMBED_CHUNK {
            return self.embed(bags.to_vec(), side);
        }
        let chunks =
            mb_par::par_chunks(threads, bags, EMBED_CHUNK, |_, c| self.embed(c.to_vec(), side));
        let mut data = Vec::with_capacity(bags.len() * self.cfg.out_dim);
        for chunk in &chunks {
            data.extend_from_slice(chunk.data());
        }
        Tensor::from_vec(vec![bags.len(), self.cfg.out_dim], data)
    }

    fn embed(&self, bags: Vec<Vec<u32>>, side: SideIds) -> Tensor {
        if bags.is_empty() {
            return Tensor::zeros(vec![0, self.cfg.out_dim]);
        }
        let mut tape = Tape::new();
        let vars = self.params.inject(&mut tape);
        let enc = self.encode_side(&mut tape, &vars, side, bags);
        tape.value(enc).clone()
    }

    /// Freeze the encoder for tape-free serving: snapshot the
    /// parameters once into an `Arc`-shared
    /// [`crate::frozen::FrozenBiEncoder`] (quantizing the embedding
    /// table per `mode`). The frozen forward is bit-identical to this
    /// model's embed path when `mode` is [`QuantMode::Exact`].
    pub fn freeze(&self, mode: QuantMode) -> crate::frozen::FrozenBiEncoder {
        crate::frozen::FrozenBiEncoder::new(
            self.cfg,
            &self.params,
            self.emb,
            self.mention_side,
            self.entity_side,
            self.vocab_len,
            mode,
        )
    }

    /// Vocabulary size this model was built for.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }

    /// Index (in parameter order) of the token-embedding table —
    /// the sparse parameter the meta-reweighting excludes from its
    /// gradient dot products.
    pub fn embedding_param_index(&self) -> usize {
        self.emb.index()
    }
}

/// Handles produced by [`BiEncoder::forward_losses`].
pub struct BiForward {
    /// Parameter leaves in [`Params`] order.
    pub vars: Vec<Var>,
    /// `[n, out_dim]` mention encodings.
    pub mentions: Var,
    /// `[n, out_dim]` entity encodings.
    pub entities: Var,
    /// `[n, n]` scaled score matrix.
    pub scores: Var,
    /// `[n]` per-example losses (Eq. 6).
    pub losses: Var,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{build_vocab, InputConfig, TrainPair};
    use mb_datagen::{World, WorldConfig};
    use mb_tensor::optim::Adam;

    fn setup() -> (World, Vocab, Vec<TrainPair>) {
        let world = World::generate(WorldConfig::tiny(17));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(2);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 64, &mut rng);
        let cfg = InputConfig::default();
        let pairs: Vec<TrainPair> = ms
            .mentions
            .iter()
            .map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m))
            .collect();
        (world, vocab, pairs)
    }

    fn tiny_cfg() -> BiEncoderConfig {
        BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() }
    }

    #[test]
    fn encodings_are_unit_norm() {
        let (_, vocab, pairs) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(3));
        let vecs = model.embed_entities(pairs.iter().take(8).map(|p| p.entity.clone()).collect());
        for i in 0..vecs.rows() {
            let n: f64 = vecs.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9, "row norm {n}");
        }
    }

    #[test]
    fn empty_embed_is_empty() {
        let (_, vocab, _) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(3));
        assert_eq!(model.embed_mentions(vec![]).rows(), 0);
    }

    #[test]
    fn training_reduces_loss() {
        let (_, vocab, pairs) = setup();
        let mut model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(4));
        let batch = &pairs[..16];
        let before = model.batch_loss(batch);
        let mut opt = Adam::new(0.01);
        for _ in 0..30 {
            model.train_step(batch, &mut opt);
        }
        let after = model.batch_loss(batch);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn gradcheck_full_model() {
        let (_, vocab, pairs) = setup();
        let small = BiEncoderConfig { emb_dim: 4, hidden: 4, out_dim: 4, ..Default::default() };
        let model = BiEncoder::new(&vocab, small, &mut Rng::seed_from_u64(5));
        let batch: Vec<TrainPair> = pairs[..3].to_vec();
        let (_, analytic) = model.batch_grad(&batch);
        let mut f = |p: &mb_tensor::Params| {
            let mut m = model.clone();
            m.set_params(p.clone());
            m.batch_loss(&batch)
        };
        let numeric = mb_tensor::gradcheck::numeric_grad_params(&mut f, model.params(), 1e-5);
        let err = mb_tensor::gradcheck::max_rel_error(&analytic, &numeric);
        assert!(err < 1e-5, "gradcheck failed: {err}");
    }

    #[test]
    fn singleton_batch_falls_back_to_including_gold() {
        let (_, vocab, pairs) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(6));
        // Must not panic.
        let loss = model.batch_loss(&pairs[..1]);
        assert!(loss.is_finite());
    }

    #[test]
    fn set_params_round_trip_preserves_outputs() {
        let (_, vocab, pairs) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(7));
        let saved = model.params().clone();
        let mut model2 = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(99));
        model2.set_params(saved);
        let a = model.embed_entities(vec![pairs[0].entity.clone()]);
        let b = model2.embed_entities(vec![pairs[0].entity.clone()]);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_embed_is_bit_identical_to_single() {
        let (_, vocab, pairs) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(11));
        let bags: Vec<Vec<u32>> = pairs.iter().take(9).map(|p| p.mention.clone()).collect();
        let batched = model.embed_mentions_batch(&bags);
        for (i, bag) in bags.iter().enumerate() {
            let single = model.embed_mentions(vec![bag.clone()]);
            assert_eq!(batched.row(i), single.row(0), "row {i} differs");
        }
        assert_eq!(model.embed_mentions_batch(&[]).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let (_, vocab, _) = setup();
        let model = BiEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(8));
        model.batch_loss(&[]);
    }
}
