//! Featurization: mentions and entities → token-id bags.
//!
//! The bi-encoder's `ENCODER_m(mᵢ, context(mᵢ))` takes the mention
//! surface plus a truncated context window; `ENCODER_e(eᵢ, desp(eᵢ))`
//! takes the title plus a truncated description (Eqs. 3–4). Both sides
//! share one vocabulary.
//!
//! The vocabulary is built over *all* domains' raw text (descriptions
//! and unlabeled corpora), not just labeled source data: the paper's
//! BERT wordpiece vocabulary likewise covers target-domain strings even
//! though no target-domain *labels* exist. Only labels are few-shot.

use mb_datagen::LinkedMention;
use mb_kb::{Entity, EntityId, KnowledgeBase};
use mb_text::tokenizer::tokenize;
use mb_text::vocab::VocabBuilder;
use mb_text::Vocab;

/// Truncation limits for encoder inputs.
#[derive(Debug, Clone, Copy)]
pub struct InputConfig {
    /// Max context tokens kept on each side of the mention.
    pub max_context: usize,
    /// Max description tokens kept for an entity.
    pub max_description: usize,
}

impl Default for InputConfig {
    fn default() -> Self {
        InputConfig { max_context: 12, max_description: 24 }
    }
}

/// Token bag for a mention: surface tokens + the last `max_context`
/// tokens of the left context + the first `max_context` of the right.
pub fn mention_bag(vocab: &Vocab, cfg: &InputConfig, mention: &LinkedMention) -> Vec<u32> {
    let mut tokens = tokenize(&mention.surface);
    let left = tokenize(&mention.left);
    let skip = left.len().saturating_sub(cfg.max_context);
    tokens.extend(left.into_iter().skip(skip));
    let mut right = tokenize(&mention.right);
    right.truncate(cfg.max_context);
    tokens.extend(right);
    vocab.encode_tokens(&tokens)
}

/// Token bag for an entity: title tokens + truncated description.
pub fn entity_bag(vocab: &Vocab, cfg: &InputConfig, entity: &Entity) -> Vec<u32> {
    let mut tokens = tokenize(&entity.title);
    let mut desc = tokenize(&entity.description);
    desc.truncate(cfg.max_description);
    tokens.extend(desc);
    vocab.encode_tokens(&tokens)
}

/// Token bag of just the mention surface (cross-encoder interaction
/// feature).
pub fn surface_bag(vocab: &Vocab, mention: &LinkedMention) -> Vec<u32> {
    vocab.encode(&mention.surface)
}

/// Token bag of just the entity title (cross-encoder interaction
/// feature).
pub fn title_bag(vocab: &Vocab, entity: &Entity) -> Vec<u32> {
    vocab.encode(&entity.title)
}

/// A featurized training pair `(mᵢ, eᵢ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainPair {
    /// Mention-side bag (surface + context).
    pub mention: Vec<u32>,
    /// Surface-only bag.
    pub surface: Vec<u32>,
    /// Entity-side bag (title + description).
    pub entity: Vec<u32>,
    /// Title-only bag.
    pub title: Vec<u32>,
    /// The gold entity id.
    pub gold: EntityId,
}

impl TrainPair {
    /// Featurize a labeled mention against its gold entity.
    pub fn from_mention(
        vocab: &Vocab,
        cfg: &InputConfig,
        kb: &KnowledgeBase,
        mention: &LinkedMention,
    ) -> TrainPair {
        let entity = kb.entity(mention.entity);
        TrainPair {
            mention: mention_bag(vocab, cfg, mention),
            surface: surface_bag(vocab, mention),
            entity: entity_bag(vocab, cfg, entity),
            title: title_bag(vocab, entity),
            gold: mention.entity,
        }
    }
}

/// Build a vocabulary over the whole knowledge base plus any extra raw
/// documents (e.g. unlabeled target corpora), with a minimum count.
pub fn build_vocab<'a>(
    kb: &KnowledgeBase,
    extra_docs: impl IntoIterator<Item = &'a str>,
    min_count: u64,
) -> Vocab {
    let mut b = VocabBuilder::new();
    for e in kb.entities() {
        b.add_text(&e.title);
        b.add_text(&e.description);
    }
    for d in extra_docs {
        b.add_text(d);
    }
    b.build(min_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::{World, WorldConfig};

    fn setup() -> (mb_datagen::World, Vocab) {
        let world = World::generate(WorldConfig::tiny(13));
        let vocab = build_vocab(world.kb(), [], 1);
        (world, vocab)
    }

    #[test]
    fn vocab_covers_all_domains() {
        let (world, vocab) = setup();
        // Spot-check a few description tokens from the target domain.
        let target = world.domain("TargetX");
        let id = world.kb().domain_entities(target.id)[0];
        let desc = &world.kb().entity(id).description;
        assert!(vocab.oov_rate(desc) < 0.01, "target description is OOV");
    }

    #[test]
    fn mention_bag_truncates_context() {
        let (_, vocab) = setup();
        let cfg = InputConfig { max_context: 2, max_description: 4 };
        let m = LinkedMention {
            left: "a b c d e ".into(),
            surface: "target name".into(),
            right: " v w x y z".into(),
            entity: EntityId(0),
            category: mb_text::OverlapCategory::LowOverlap,
        };
        let bag = mention_bag(&vocab, &cfg, &m);
        // 2 surface + last-2 of left + first-2 of right.
        assert_eq!(bag.len(), 6);
    }

    #[test]
    fn entity_bag_includes_title_and_truncated_description() {
        let (world, vocab) = setup();
        let cfg = InputConfig { max_context: 4, max_description: 3 };
        let e = &world.kb().entities()[0];
        let bag = entity_bag(&vocab, &cfg, e);
        let title_len = tokenize(&e.title).len();
        assert_eq!(bag.len(), title_len + 3.min(tokenize(&e.description).len()));
    }

    #[test]
    fn train_pair_links_gold() {
        let (world, vocab) = setup();
        let cfg = InputConfig::default();
        let domain = world.domain("TargetX").clone();
        let mut rng = mb_common::Rng::seed_from_u64(1);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 5, &mut rng);
        for m in &ms.mentions {
            let p = TrainPair::from_mention(&vocab, &cfg, world.kb(), m);
            assert_eq!(p.gold, m.entity);
            assert!(!p.mention.is_empty());
            assert!(!p.entity.is_empty());
        }
    }

    #[test]
    fn min_count_shrinks_vocab() {
        let (world, _) = setup();
        let v1 = build_vocab(world.kb(), [], 1);
        let v3 = build_vocab(world.kb(), [], 3);
        assert!(v3.len() < v1.len());
    }
}
