//! Plain (unweighted) trainers — the BLINK baseline path.
//!
//! MetaBLINK's reweighted training lives in `mb-core`; these trainers
//! implement standard mini-batch training used when BLINK is trained
//! directly on seed, syn, or syn+seed data.

use crate::biencoder::BiEncoder;
use crate::crossencoder::{CandidateSet, CrossEncoder};
use crate::input::TrainPair;
use mb_common::storage::{NoBudget, StepBudget};
use mb_common::{Result, Rng};
use mb_tensor::optim::{Adam, Optimizer};

/// Shared training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (bi-encoder; the cross-encoder always uses 1, as
    /// in the paper).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 8, batch_size: 32, lr: 5e-3, seed: 0 }
    }
}

/// Per-epoch mean losses returned by the trainers.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Mean loss of each epoch, in order.
    pub epoch_losses: Vec<f64>,
    /// True if training stopped early because the parameters became
    /// non-finite; the model is rolled back to the last finite state.
    pub diverged: bool,
}

impl TrainStats {
    /// Loss of the final epoch (NaN if no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// True if the last epoch improved on the first.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Train a bi-encoder on labeled pairs with in-batch negatives.
///
/// Batches are built from a fresh shuffle each epoch. Batches of size 1
/// are skipped when the loss excludes gold (no negatives exist).
pub fn train_biencoder(
    model: &mut BiEncoder,
    pairs: &[TrainPair],
    cfg: &TrainConfig,
) -> TrainStats {
    try_train_biencoder(model, pairs, cfg, &mut NoBudget).expect("NoBudget never aborts")
}

/// [`train_biencoder`] with a crash-injection seam: `budget` is ticked
/// once before every epoch, and an error from it aborts the run there,
/// exactly as if the process had died between epochs.
///
/// # Errors
/// Propagates the budget's error (conventionally [`mb_common::Error::Aborted`]).
pub fn try_train_biencoder(
    model: &mut BiEncoder,
    pairs: &[TrainPair],
    cfg: &TrainConfig,
    budget: &mut dyn StepBudget,
) -> Result<TrainStats> {
    let mut stats = TrainStats::default();
    if pairs.is_empty() {
        return Ok(stats);
    }
    let mut opt = Adam::new(cfg.lr);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut checkpoint = model.params().clone();
    for _ in 0..cfg.epochs {
        budget.tick()?;
        rng.shuffle(&mut order);
        let mut losses = Vec::new();
        for chunk in order.chunks(cfg.batch_size.max(2)) {
            if chunk.len() < 2 && model.config().exclude_gold_in_loss {
                continue;
            }
            let batch: Vec<TrainPair> = chunk.iter().map(|&i| pairs[i].clone()).collect();
            losses.push(model.train_step(&batch, &mut opt));
        }
        // Failure injection guard: roll back and stop on divergence.
        if model.params().has_non_finite() {
            model.set_params(checkpoint);
            stats.diverged = true;
            return Ok(stats);
        }
        checkpoint = model.params().clone();
        stats.epoch_losses.push(mb_common::util::mean(&losses));
    }
    Ok(stats)
}

/// Train a cross-encoder on candidate sets (batch size 1, as in the
/// paper — the meta-learning variant doubles memory, forcing batch 1).
pub fn train_crossencoder(
    model: &mut CrossEncoder,
    sets: &[CandidateSet],
    cfg: &TrainConfig,
) -> TrainStats {
    try_train_crossencoder(model, sets, cfg, &mut NoBudget).expect("NoBudget never aborts")
}

/// [`train_crossencoder`] with a crash-injection seam; `budget` is
/// ticked once before every epoch.
///
/// # Errors
/// Propagates the budget's error (conventionally [`mb_common::Error::Aborted`]).
pub fn try_train_crossencoder(
    model: &mut CrossEncoder,
    sets: &[CandidateSet],
    cfg: &TrainConfig,
    budget: &mut dyn StepBudget,
) -> Result<TrainStats> {
    let mut stats = TrainStats::default();
    let trainable: Vec<&CandidateSet> =
        sets.iter().filter(|s| s.gold_index.is_some() && !s.is_empty()).collect();
    if trainable.is_empty() {
        return Ok(stats);
    }
    let mut opt = Adam::new(cfg.lr);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..trainable.len()).collect();
    let mut checkpoint = model.params().clone();
    for _ in 0..cfg.epochs {
        budget.tick()?;
        rng.shuffle(&mut order);
        let mut losses = Vec::new();
        for &i in &order {
            losses.push(model.train_step(trainable[i], &mut opt));
        }
        if model.params().has_non_finite() {
            model.set_params(checkpoint);
            stats.diverged = true;
            return Ok(stats);
        }
        checkpoint = model.params().clone();
        stats.epoch_losses.push(mb_common::util::mean(&losses));
    }
    Ok(stats)
}

/// Exponential learning-rate decay helper for longer runs.
pub fn decay_lr(opt: &mut dyn Optimizer, factor: f64) {
    let lr = opt.learning_rate();
    opt.set_learning_rate(lr * factor);
}

/// Hard-negative mining round for the bi-encoder (the second training
/// stage of the original BLINK recipe, which the paper inherits): after
/// plain in-batch training, every batch is augmented with the
/// top-scoring *wrong* entities for its mentions, retrieved with the
/// current model, and the loss becomes softmax cross-entropy over the
/// rectangular `[n, n + negatives]` score matrix.
///
/// `pool_bags`/`pool_ids` hold the candidate dictionary. Returns
/// per-epoch losses; rolls back and flags on divergence.
pub fn train_biencoder_hard_negatives(
    model: &mut BiEncoder,
    pairs: &[TrainPair],
    pool_bags: &[Vec<u32>],
    pool_ids: &[mb_kb::EntityId],
    negatives_per_pair: usize,
    cfg: &TrainConfig,
) -> TrainStats {
    try_train_biencoder_hard_negatives(
        model,
        pairs,
        pool_bags,
        pool_ids,
        negatives_per_pair,
        cfg,
        &mut NoBudget,
    )
    .expect("NoBudget never aborts")
}

/// [`train_biencoder_hard_negatives`] with a crash-injection seam;
/// `budget` is ticked once before every epoch.
///
/// # Errors
/// Propagates the budget's error (conventionally [`mb_common::Error::Aborted`]).
#[allow(clippy::too_many_arguments)]
pub fn try_train_biencoder_hard_negatives(
    model: &mut BiEncoder,
    pairs: &[TrainPair],
    pool_bags: &[Vec<u32>],
    pool_ids: &[mb_kb::EntityId],
    negatives_per_pair: usize,
    cfg: &TrainConfig,
    budget: &mut dyn StepBudget,
) -> Result<TrainStats> {
    assert_eq!(pool_bags.len(), pool_ids.len(), "pool bags/ids misaligned");
    let mut stats = TrainStats::default();
    if pairs.is_empty() || pool_bags.is_empty() || negatives_per_pair == 0 {
        return Ok(stats);
    }
    let mut opt = Adam::new(cfg.lr);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut checkpoint = model.params().clone();
    for _ in 0..cfg.epochs {
        budget.tick()?;
        // Re-embed the pool with the current model each epoch.
        let pool_vecs = model.embed_entities(pool_bags.to_vec());
        rng.shuffle(&mut order);
        let mut losses = Vec::new();
        for chunk in order.chunks(cfg.batch_size.max(2)) {
            if chunk.len() < 2 {
                continue;
            }
            let batch: Vec<TrainPair> = chunk.iter().map(|&i| pairs[i].clone()).collect();
            let mention_bags: Vec<Vec<u32>> = batch.iter().map(|p| p.mention.clone()).collect();
            let queries = model.embed_mentions(mention_bags);
            let mut extra: Vec<Vec<u32>> = Vec::new();
            for (row, pair) in batch.iter().enumerate() {
                let q = queries.row(row);
                let scores: Vec<f64> = (0..pool_vecs.rows())
                    .map(|i| pool_vecs.row(i).iter().zip(q).map(|(a, b)| a * b).sum())
                    .collect();
                let mut added = 0;
                for idx in mb_common::util::top_k_desc(&scores, negatives_per_pair + 1) {
                    if added >= negatives_per_pair {
                        break;
                    }
                    if pool_ids[idx] == pair.gold {
                        continue;
                    }
                    extra.push(pool_bags[idx].clone());
                    added += 1;
                }
            }
            losses.push(model.train_step_with_negatives(&batch, extra, &mut opt));
        }
        if model.params().has_non_finite() {
            model.set_params(checkpoint);
            stats.diverged = true;
            return Ok(stats);
        }
        checkpoint = model.params().clone();
        stats.epoch_losses.push(mb_common::util::mean(&losses));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biencoder::BiEncoderConfig;
    use crate::crossencoder::CrossEncoderConfig;
    use crate::input::{
        build_vocab, entity_bag, entity_bag as mb_encoders_entity_bag, title_bag, InputConfig,
    };
    use mb_datagen::{World, WorldConfig};
    use mb_text::Vocab;

    fn setup() -> (World, Vocab, Vec<TrainPair>) {
        let world = World::generate(WorldConfig::tiny(29));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(3);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 80, &mut rng);
        let cfg = InputConfig::default();
        let pairs = ms
            .mentions
            .iter()
            .map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m))
            .collect();
        (world, vocab, pairs)
    }

    #[test]
    fn biencoder_training_improves() {
        let (_, vocab, pairs) = setup();
        let bi_cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let cfg = TrainConfig { epochs: 5, batch_size: 16, lr: 0.01, seed: 7 };
        let stats = train_biencoder(&mut model, &pairs, &cfg);
        assert_eq!(stats.epoch_losses.len(), 5);
        assert!(stats.improved(), "losses: {:?}", stats.epoch_losses);
    }

    #[test]
    fn empty_pairs_do_nothing() {
        let (_, vocab, _) = setup();
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let stats = train_biencoder(&mut model, &[], &TrainConfig::default());
        assert!(stats.epoch_losses.is_empty());
        assert!(stats.final_loss().is_nan());
    }

    #[test]
    fn crossencoder_training_improves() {
        let (world, vocab, pairs) = setup();
        let icfg = InputConfig::default();
        let domain = world.domain("TargetX").clone();
        let ids = world.kb().domain_entities(domain.id);
        let sets: Vec<CandidateSet> = pairs
            .iter()
            .take(25)
            .map(|p| {
                let mut cand_ids = vec![p.gold];
                let mut r = Rng::seed_from_u64(p.gold.0 as u64 + 9);
                while cand_ids.len() < 6 {
                    let c = *r.choose(ids);
                    if !cand_ids.contains(&c) {
                        cand_ids.push(c);
                    }
                }
                let cands = cand_ids
                    .iter()
                    .map(|&id| {
                        let e = world.kb().entity(id);
                        (entity_bag(&vocab, &icfg, e), title_bag(&vocab, e))
                    })
                    .collect();
                CandidateSet::new(p, cands, Some(0))
            })
            .collect();
        let mut model = CrossEncoder::new(
            &vocab,
            CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            &mut Rng::seed_from_u64(2),
        );
        let cfg = TrainConfig { epochs: 6, batch_size: 1, lr: 0.01, seed: 11 };
        let stats = train_crossencoder(&mut model, &sets, &cfg);
        assert!(stats.improved(), "losses: {:?}", stats.epoch_losses);
    }

    #[test]
    fn crossencoder_skips_goldless_sets() {
        let (_, vocab, _) = setup();
        let mut model = CrossEncoder::new(
            &vocab,
            CrossEncoderConfig { emb_dim: 8, hidden: 8, ..Default::default() },
            &mut Rng::seed_from_u64(2),
        );
        let stats = train_crossencoder(&mut model, &[], &TrainConfig::default());
        assert!(stats.epoch_losses.is_empty());
    }

    #[test]
    fn divergence_rolls_back_to_finite_params() {
        let (_, vocab, pairs) = setup();
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        // An absurd learning rate reliably explodes tanh+Adam training.
        let cfg = TrainConfig { epochs: 6, batch_size: 8, lr: 1e6, seed: 3 };
        let stats = train_biencoder(&mut model, &pairs, &cfg);
        // Either it diverged (and was rolled back to finite params) or
        // it somehow survived — both must leave finite parameters.
        assert!(!model.params().has_non_finite());
        if stats.diverged {
            assert!(stats.epoch_losses.len() < cfg.epochs);
        }
    }

    #[test]
    fn hard_negative_mining_improves_in_domain_ranking() {
        let (world, vocab, pairs) = setup();
        let domain = world.domain("TargetX").clone();
        let ids = world.kb().domain_entities(domain.id).to_vec();
        let icfg = InputConfig::default();
        let pool_bags: Vec<Vec<u32>> = ids
            .iter()
            .map(|&id| mb_encoders_entity_bag(&vocab, &icfg, world.kb().entity(id)))
            .collect();
        let bi_cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(4));
        // Plain warm-up, then a hard-negative round.
        train_biencoder(
            &mut model,
            &pairs,
            &TrainConfig { epochs: 3, batch_size: 16, lr: 0.01, seed: 1 },
        );
        let recall_before = recall_at_k(&model, &vocab, &pairs, &pool_bags, &ids, 8);
        let stats = train_biencoder_hard_negatives(
            &mut model,
            &pairs,
            &pool_bags,
            &ids,
            2,
            &TrainConfig { epochs: 3, batch_size: 8, lr: 5e-3, seed: 2 },
        );
        assert!(!stats.diverged);
        assert_eq!(stats.epoch_losses.len(), 3);
        let recall_after = recall_at_k(&model, &vocab, &pairs, &pool_bags, &ids, 8);
        assert!(
            recall_after + 0.05 >= recall_before,
            "hard negatives hurt recall: {recall_before:.3} -> {recall_after:.3}"
        );
    }

    /// Train-set recall@k of the bi-encoder alone.
    fn recall_at_k(
        model: &BiEncoder,
        _vocab: &Vocab,
        pairs: &[TrainPair],
        pool_bags: &[Vec<u32>],
        ids: &[mb_kb::EntityId],
        k: usize,
    ) -> f64 {
        let pool = model.embed_entities(pool_bags.to_vec());
        let mut hits = 0;
        for p in pairs {
            let q = model.embed_mentions(vec![p.mention.clone()]);
            let scores: Vec<f64> = (0..pool.rows())
                .map(|i| pool.row(i).iter().zip(q.row(0)).map(|(a, b)| a * b).sum())
                .collect();
            let top = mb_common::util::top_k_desc(&scores, k);
            if top.iter().any(|&i| ids[i] == p.gold) {
                hits += 1;
            }
        }
        hits as f64 / pairs.len() as f64
    }

    #[test]
    fn hard_negatives_degenerate_inputs() {
        let (_, vocab, pairs) = setup();
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(4));
        let s1 =
            train_biencoder_hard_negatives(&mut model, &[], &[], &[], 2, &TrainConfig::default());
        assert!(s1.epoch_losses.is_empty());
        let s2 = train_biencoder_hard_negatives(
            &mut model,
            &pairs[..4],
            &[vec![1, 2]],
            &[mb_kb::EntityId(0)],
            0,
            &TrainConfig::default(),
        );
        assert!(s2.epoch_losses.is_empty());
    }

    #[test]
    fn injected_kill_aborts_between_epochs() {
        let (_, vocab, pairs) = setup();
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let cfg = TrainConfig { epochs: 5, batch_size: 16, lr: 0.01, seed: 7 };
        // Reference: uninterrupted run.
        let mut full = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let full_stats = train_biencoder(&mut full, &pairs, &cfg);
        // Kill after 2 epochs: the error propagates and exactly 2 epochs ran.
        let mut model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let mut budget = mb_fault::KillAt::new(2);
        let err = try_train_biencoder(&mut model, &pairs, &cfg, &mut budget).unwrap_err();
        assert!(matches!(err, mb_common::Error::Aborted(_)));
        assert_eq!(budget.ticks(), 2);
        // A kill budget larger than the run never fires.
        let mut model2 = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let mut roomy = mb_fault::KillAt::new(100);
        let stats = try_train_biencoder(&mut model2, &pairs, &cfg, &mut roomy).unwrap();
        assert_eq!(stats.epoch_losses, full_stats.epoch_losses);
        assert_eq!(model2.params(), full.params());
    }

    #[test]
    fn decay_helper_scales_lr() {
        let mut opt = Adam::new(0.1);
        decay_lr(&mut opt, 0.5);
        assert!((opt.learning_rate() - 0.05).abs() < 1e-12);
    }
}
