//! The cross-encoder (candidate-ranking stage).
//!
//! The paper re-ranks the bi-encoder's 64 candidates with a BERT
//! cross-encoder over the concatenated mention and entity text. Our
//! substitute scores each (mention, candidate) pair from two learned
//! interaction channels over a shared embedding table:
//!
//! * *semantic*: pooled(mention + context) ⊙ pooled(title + description)
//! * *surface*:  pooled(surface) ⊙ pooled(title)
//!
//! followed by a two-layer MLP. Having an explicit surface channel is
//! what lets a cross-encoder trained only on exact-match data learn the
//! surface shortcut the paper describes — and what the syn data then
//! corrects (Table X).

use crate::input::TrainPair;
use mb_common::Rng;
use mb_par::Threads;
use mb_tensor::optim::Optimizer;
use mb_tensor::params::{GradVec, ParamId};
use mb_tensor::{init, Params, QuantMode, Tape, Var};
use mb_text::Vocab;

/// Candidate sets per worker task in the chunked-parallel scoring
/// path; fixed by the data, never by the worker count (DESIGN.md §11).
pub const SCORE_CHUNK: usize = 8;

/// Cross-encoder hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct CrossEncoderConfig {
    /// Token embedding dimension.
    pub emb_dim: usize,
    /// MLP hidden width.
    pub hidden: usize,
    /// Initial weight of the raw dot-product channel
    /// `γ · (pooled mention · pooled entity)` added to the MLP score.
    /// A positive init makes the untrained cross-encoder a bag-of-words
    /// ranker — the transferable-pretrained-representation substitute
    /// (γ is learned).
    pub dot_gamma_init: f64,
}

impl Default for CrossEncoderConfig {
    fn default() -> Self {
        CrossEncoderConfig { emb_dim: 32, hidden: 32, dot_gamma_init: 4.0 }
    }
}

/// A ranking example: one mention with its candidate entities.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Mention-side bag (surface + context).
    pub mention: Vec<u32>,
    /// Surface-only bag.
    pub surface: Vec<u32>,
    /// Per-candidate entity bags (title + description).
    pub entities: Vec<Vec<u32>>,
    /// Per-candidate title bags.
    pub titles: Vec<Vec<u32>>,
    /// Index of the gold candidate within `entities`, if present.
    pub gold_index: Option<usize>,
}

impl CandidateSet {
    /// Build a ranking example from a featurized pair and candidate
    /// pairs (the gold candidate is found by comparing entity bags).
    pub fn new(
        pair: &TrainPair,
        candidates: Vec<(Vec<u32>, Vec<u32>)>,
        gold_index: Option<usize>,
    ) -> Self {
        let (entities, titles) = candidates.into_iter().unzip();
        CandidateSet {
            mention: pair.mention.clone(),
            surface: pair.surface.clone(),
            entities,
            titles,
            gold_index,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// The cross-encoder model.
#[derive(Debug, Clone)]
pub struct CrossEncoder {
    cfg: CrossEncoderConfig,
    params: Params,
    emb: ParamId,
    w_sem: ParamId,
    b_sem: ParamId,
    w_surf: ParamId,
    b_surf: ParamId,
    w_out: ParamId,
    b_out: ParamId,
    gamma: ParamId,
}

impl CrossEncoder {
    /// Initialise a cross-encoder for the given vocabulary.
    pub fn new(vocab: &Vocab, cfg: CrossEncoderConfig, rng: &mut Rng) -> Self {
        let mut params = Params::new();
        let emb = params.add("emb", init::embedding(vocab.len(), cfg.emb_dim, rng));
        let w_sem = params.add("sem.w", init::xavier_uniform(cfg.emb_dim, cfg.hidden, rng));
        let b_sem = params.add("sem.b", init::zeros_bias(cfg.hidden));
        let w_surf = params.add("surf.w", init::xavier_uniform(cfg.emb_dim, cfg.hidden, rng));
        let b_surf = params.add("surf.b", init::zeros_bias(cfg.hidden));
        let w_out = params.add("out.w", init::xavier_uniform(cfg.hidden, 1, rng));
        let b_out = params.add("out.b", init::zeros_bias(1));
        let gamma =
            params.add("gamma", mb_tensor::Tensor::from_vec(vec![1, 1], vec![cfg.dot_gamma_init]));
        CrossEncoder { cfg, params, emb, w_sem, b_sem, w_surf, b_surf, w_out, b_out, gamma }
    }

    /// The model's configuration.
    pub fn config(&self) -> &CrossEncoderConfig {
        &self.cfg
    }

    /// Borrow the parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutably borrow the parameters.
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Replace the parameters.
    ///
    /// # Panics
    /// Panics on layout mismatch.
    pub fn set_params(&mut self, params: Params) {
        assert_eq!(params.len(), self.params.len(), "set_params: layout mismatch");
        self.params = params;
    }

    /// Core forward: score `n` (mention, candidate) rows, given the
    /// four bag columns row-aligned with each other. Returns the
    /// `[n, 1]` score node. Every op is row-independent, so scores are
    /// bit-identical however rows are grouped into tapes.
    fn score_rows(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        m_bags: Vec<Vec<u32>>,
        s_bags: Vec<Vec<u32>>,
        e_bags: Vec<Vec<u32>>,
        t_bags: Vec<Vec<u32>>,
    ) -> Var {
        let n = m_bags.len();
        let emb = vars[self.emb.index()];
        let m_pool = tape.bag_embed(emb, m_bags);
        let s_pool = tape.bag_embed(emb, s_bags);
        let e_pool = tape.bag_embed(emb, e_bags);
        let t_pool = tape.bag_embed(emb, t_bags);
        let sem = tape.mul_elem(m_pool, e_pool);
        let surf = tape.mul_elem(s_pool, t_pool);
        let h_sem = tape.linear(sem, vars[self.w_sem.index()], vars[self.b_sem.index()]);
        let h_surf = tape.linear(surf, vars[self.w_surf.index()], vars[self.b_surf.index()]);
        let h = tape.add(h_sem, h_surf);
        let h = tape.tanh(h);
        let mlp_scores = tape.linear(h, vars[self.w_out.index()], vars[self.b_out.index()]);
        // Dot-product channel: γ · (m̄ · ē) per candidate.
        let dots = tape.rows_dot(m_pool, e_pool);
        let dots_col = tape.reshape(dots, vec![n, 1]);
        let dot_scores = tape.matmul(dots_col, vars[self.gamma.index()]);
        tape.add(mlp_scores, dot_scores)
    }

    /// Build the forward graph scoring every candidate of `set`.
    ///
    /// Returns the parameter vars and a `[1, k]` logits node.
    ///
    /// # Panics
    /// Panics on an empty candidate set.
    pub fn forward_logits(&self, tape: &mut Tape, set: &CandidateSet) -> (Vec<Var>, Var) {
        assert!(!set.is_empty(), "forward_logits: empty candidate set");
        let k = set.len();
        let vars = self.params.inject(tape);
        let m_bags: Vec<Vec<u32>> =
            std::iter::repeat_with(|| set.mention.clone()).take(k).collect();
        let s_bags: Vec<Vec<u32>> =
            std::iter::repeat_with(|| set.surface.clone()).take(k).collect();
        let scores =
            self.score_rows(tape, &vars, m_bags, s_bags, set.entities.clone(), set.titles.clone());
        let logits = tape.reshape(scores, vec![1, k]);
        (vars, logits)
    }

    /// Score all candidates (inference); higher is better.
    ///
    /// # Panics
    /// Panics on an empty candidate set.
    pub fn score(&self, set: &CandidateSet) -> Vec<f64> {
        assert!(!set.is_empty(), "score: empty candidate set");
        self.score_batch(std::slice::from_ref(set)).pop().expect("one set in, one out")
    }

    /// Batched scoring — the serving entry point.
    ///
    /// Scores every candidate of every set in **one fused forward**:
    /// one tape, one parameter injection (including the full token-
    /// embedding table), one pass through each tensor op over all
    /// `Σ len(setᵢ)` rows. Per-set results are bit-identical to
    /// [`CrossEncoder::score`] on that set alone, because every op in
    /// the scorer is row-independent.
    ///
    /// Empty sets are allowed and yield empty score vectors (a serving
    /// process must not panic on a mention with no retrieved
    /// candidates).
    pub fn score_batch(&self, sets: &[CandidateSet]) -> Vec<Vec<f64>> {
        let total: usize = sets.iter().map(|s| s.len()).sum();
        if total == 0 {
            return sets.iter().map(|_| Vec::new()).collect();
        }
        let mut m_bags = Vec::with_capacity(total);
        let mut s_bags = Vec::with_capacity(total);
        let mut e_bags = Vec::with_capacity(total);
        let mut t_bags = Vec::with_capacity(total);
        for set in sets {
            for (e, t) in set.entities.iter().zip(&set.titles) {
                m_bags.push(set.mention.clone());
                s_bags.push(set.surface.clone());
                e_bags.push(e.clone());
                t_bags.push(t.clone());
            }
        }
        let mut tape = Tape::new();
        let vars = self.params.inject(&mut tape);
        let scores = self.score_rows(&mut tape, &vars, m_bags, s_bags, e_bags, t_bags);
        let flat = tape.value(scores).data().to_vec();
        let mut out = Vec::with_capacity(sets.len());
        let mut offset = 0;
        for set in sets {
            out.push(flat[offset..offset + set.len()].to_vec());
            offset += set.len();
        }
        out
    }

    /// [`CrossEncoder::score_batch`] with fixed-size chunks of sets
    /// scored on separate workers.
    ///
    /// Because the scorer is row-independent, the chunked forward is
    /// bit-identical to the fused one, and the [`SCORE_CHUNK`]
    /// granularity depends only on the data — so results are
    /// bit-identical at every [`Threads`] value.
    pub fn score_batch_with(&self, sets: &[CandidateSet], threads: Threads) -> Vec<Vec<f64>> {
        if threads.is_single() || sets.len() <= SCORE_CHUNK {
            return self.score_batch(sets);
        }
        let chunks = mb_par::par_chunks(threads, sets, SCORE_CHUNK, |_, c| self.score_batch(c));
        chunks.into_iter().flatten().collect()
    }

    /// Ranking loss of one candidate set (softmax cross-entropy against
    /// the gold index).
    ///
    /// # Panics
    /// Panics if the set has no gold candidate.
    pub fn example_loss(&self, set: &CandidateSet) -> f64 {
        let mut tape = Tape::new();
        let (_, loss) = self.forward_loss(&mut tape, set);
        tape.value(loss).item()
    }

    /// Build the forward graph up to the scalar ranking loss.
    ///
    /// # Panics
    /// Panics if the set has no gold candidate.
    pub fn forward_loss(&self, tape: &mut Tape, set: &CandidateSet) -> (Vec<Var>, Var) {
        let gold = set.gold_index.expect("forward_loss: candidate set without gold");
        let (vars, logits) = self.forward_logits(tape, set);
        let losses = tape.softmax_ce_rows(logits, vec![gold]);
        let loss = tape.mean_all(losses);
        (vars, loss)
    }

    /// Gradient of one example's loss.
    pub fn example_grad(&self, set: &CandidateSet) -> (f64, GradVec) {
        let mut tape = Tape::new();
        let (vars, loss) = self.forward_loss(&mut tape, set);
        let value = tape.value(loss).item();
        let grads = tape.backward(loss);
        (value, self.params.collect_grads(&vars, &grads))
    }

    /// Freeze the scorer for tape-free serving: snapshot the
    /// parameters once into an `Arc`-shared
    /// [`crate::frozen::FrozenCrossEncoder`] (quantizing the embedding
    /// table per `mode`). The frozen forward is bit-identical to
    /// [`CrossEncoder::score_batch`] when `mode` is
    /// [`QuantMode::Exact`].
    pub fn freeze(&self, mode: QuantMode) -> crate::frozen::FrozenCrossEncoder {
        crate::frozen::FrozenCrossEncoder::new(
            self.cfg,
            &self.params,
            crate::frozen::CrossIds {
                emb: self.emb,
                w_sem: self.w_sem,
                b_sem: self.b_sem,
                w_surf: self.w_surf,
                b_surf: self.b_surf,
                w_out: self.w_out,
                b_out: self.b_out,
                gamma: self.gamma,
            },
            mode,
        )
    }

    /// Index (in parameter order) of the token-embedding table (see
    /// `BiEncoder::embedding_param_index`).
    pub fn embedding_param_index(&self) -> usize {
        self.emb.index()
    }

    /// One optimizer step on a single example (the paper trains the
    /// cross-encoder with batch size 1); returns the loss.
    pub fn train_step(&mut self, set: &CandidateSet, opt: &mut dyn Optimizer) -> f64 {
        let (loss, grads) = self.example_grad(set);
        opt.step(&mut self.params, &grads);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{build_vocab, entity_bag, title_bag, InputConfig, TrainPair};
    use mb_datagen::{World, WorldConfig};
    use mb_tensor::optim::Adam;

    fn setup() -> (World, Vocab, Vec<CandidateSet>) {
        let world = World::generate(WorldConfig::tiny(23));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(2);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 20, &mut rng);
        let cfg = InputConfig::default();
        let ids = world.kb().domain_entities(domain.id);
        let sets: Vec<CandidateSet> = ms
            .mentions
            .iter()
            .map(|m| {
                let pair = TrainPair::from_mention(&vocab, &cfg, world.kb(), m);
                // Candidates: gold + 7 random others.
                let mut cand_ids = vec![m.entity];
                let mut r2 = Rng::seed_from_u64(m.entity.0 as u64);
                while cand_ids.len() < 8 {
                    let c = *r2.choose(ids);
                    if !cand_ids.contains(&c) {
                        cand_ids.push(c);
                    }
                }
                let candidates = cand_ids
                    .iter()
                    .map(|&id| {
                        let e = world.kb().entity(id);
                        (entity_bag(&vocab, &cfg, e), title_bag(&vocab, e))
                    })
                    .collect();
                CandidateSet::new(&pair, candidates, Some(0))
            })
            .collect();
        (world, vocab, sets)
    }

    fn tiny_cfg() -> CrossEncoderConfig {
        CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() }
    }

    #[test]
    fn scores_one_per_candidate() {
        let (_, vocab, sets) = setup();
        let model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(1));
        let s = model.score(&sets[0]);
        assert_eq!(s.len(), sets[0].len());
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn training_learns_to_rank_gold_first() {
        let (_, vocab, sets) = setup();
        let mut model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(3));
        let mut opt = Adam::new(0.02);
        for _ in 0..15 {
            for s in &sets {
                model.train_step(s, &mut opt);
            }
        }
        let mut correct = 0;
        for s in &sets {
            let scores = model.score(s);
            if mb_common::util::argmax(&scores) == Some(0) {
                correct += 1;
            }
        }
        assert!(correct >= sets.len() * 3 / 4, "only {correct}/{} ranked gold first", sets.len());
    }

    #[test]
    fn gradcheck_cross_encoder() {
        let (_, vocab, sets) = setup();
        let small = CrossEncoderConfig { emb_dim: 4, hidden: 4, ..Default::default() };
        let model = CrossEncoder::new(&vocab, small, &mut Rng::seed_from_u64(5));
        let set = &sets[0];
        let (_, analytic) = model.example_grad(set);
        let mut f = |p: &mb_tensor::Params| {
            let mut m = model.clone();
            m.set_params(p.clone());
            m.example_loss(set)
        };
        let numeric = mb_tensor::gradcheck::numeric_grad_params(&mut f, model.params(), 1e-5);
        let err = mb_tensor::gradcheck::max_rel_error(&analytic, &numeric);
        assert!(err < 1e-5, "gradcheck failed: {err}");
    }

    #[test]
    fn score_batch_matches_per_set_forward() {
        let (_, vocab, sets) = setup();
        let model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(9));
        let batched = model.score_batch(&sets[..6]);
        assert_eq!(batched.len(), 6);
        for (set, got) in sets[..6].iter().zip(&batched) {
            // Independent single-set tape through forward_logits.
            let mut tape = Tape::new();
            let (_, logits) = model.forward_logits(&mut tape, set);
            let single = tape.value(logits).data().to_vec();
            assert_eq!(got, &single, "batched scores differ from single-set forward");
        }
    }

    #[test]
    fn score_batch_allows_empty_sets() {
        let (_, vocab, sets) = setup();
        let model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(9));
        let mut empty = sets[0].clone();
        empty.entities.clear();
        empty.titles.clear();
        let mixed = vec![sets[0].clone(), empty.clone(), sets[1].clone()];
        let scores = model.score_batch(&mixed);
        assert_eq!(scores[0].len(), sets[0].len());
        assert!(scores[1].is_empty());
        assert_eq!(scores[2].len(), sets[1].len());
        assert_eq!(model.score_batch(&[empty])[0], Vec::<f64>::new());
        assert!(model.score_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "without gold")]
    fn loss_requires_gold() {
        let (_, vocab, sets) = setup();
        let model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(1));
        let mut s = sets[0].clone();
        s.gold_index = None;
        model.example_loss(&s);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn empty_candidates_panic() {
        let (_, vocab, sets) = setup();
        let model = CrossEncoder::new(&vocab, tiny_cfg(), &mut Rng::seed_from_u64(1));
        let mut s = sets[0].clone();
        s.entities.clear();
        s.titles.clear();
        model.score(&s);
    }
}
