//! Dense top-k retrieval over entity embeddings.
//!
//! [`DenseIndex`] is the exact brute-force index used for evaluation
//! (R@64 must be exact). [`PartitionedIndex`] is an IVF-style
//! approximate index (k-means partitions, probe the nearest few) used
//! by the retrieval-latency micro-benchmarks to show the usual
//! recall/latency trade-off at larger entity counts.
//!
//! [`CandidateSource`] is the retrieval abstraction the two-stage
//! linker scores candidates through: every index here implements it,
//! as does the sharded-store IVF index in `mb-store`, so the linker
//! (and the serving path behind it) can swap brute-force retrieval for
//! approximate million-entity retrieval without touching inference
//! code. Implementations must keep the workspace determinism contract:
//! `top_k` is a pure function of the query and the index, ties break
//! on the lowest candidate position, and `top_k_batch` is bit-identical
//! at any [`mb_par::Threads`] value.

use crate::biencoder::BiEncoder;
use crate::input::{entity_bag, InputConfig};
use mb_common::util::{top_k_desc, TopK};
use mb_common::Rng;
use mb_kb::{EntityId, KnowledgeBase};
use mb_tensor::kernels::{dot_block_f64, dot_i8_i32, dot_i8_i64, DOT_BLOCK, I8_EXACT_I32_COLS};
use mb_tensor::quant::{f16_to_f64, quantize_i8, QuantF16, QuantI8};
use mb_tensor::{QuantMode, Tensor};
use mb_text::Vocab;

/// Queries per fused scoring block: the entity table is streamed once
/// per block instead of once per query, so larger blocks amortize
/// memory traffic while the per-query accumulators stay resident in
/// registers/L1. Blocks are a fixed function of query index, so worker
/// count never changes which queries share a block. Pinned to the
/// width the multi-accumulator kernels specialize for.
const QUERY_BLOCK: usize = DOT_BLOCK;

/// Rows per cache-resident scoring chunk in the row-outer int8 path:
/// one chunk of codes is re-read once per query in the block, so it
/// must fit comfortably in L2 (512 rows × 256 cols = 128 KiB worst
/// case) while leaving the score scratch long enough for the
/// [`TopK::push_block`] pre-filter to skip whole runs.
const SCORE_CHUNK: usize = 512;

/// Transpose one block of query rows to `[dim, nq]` row-major — the
/// layout the `dot_block_*` kernels stream.
fn transpose_block(queries: &Tensor, range: &std::ops::Range<usize>) -> Vec<f64> {
    let nq = range.len();
    let dim = queries.cols();
    let mut qt = vec![0.0f64; dim * nq];
    for (qslot, qi) in range.clone().enumerate() {
        for (j, &x) in queries.row(qi).iter().enumerate() {
            qt[j * nq + qslot] = x;
        }
    }
    qt
}

/// Validate a `[q, dim]` query matrix against an index, returning the
/// typed error the serve-reachable batched retrieval paths report
/// instead of panicking. An empty index accepts any query width (it
/// returns empty rankings), matching the serial path which never scores.
fn check_queries(
    op: &'static str,
    queries: &Tensor,
    dim: usize,
    index_len: usize,
) -> mb_common::Result<()> {
    if queries.rank() != 2 {
        return Err(mb_common::Error::shape(
            op,
            "[q, dim] queries",
            format!("rank-{} tensor {:?}", queries.rank(), queries.shape()),
        ));
    }
    if index_len > 0 && queries.rows() > 0 && queries.cols() != dim {
        return Err(mb_common::Error::shape(
            op,
            format!("query dim {dim}"),
            format!("query dim {}", queries.cols()),
        ));
    }
    Ok(())
}

/// A source of scored entity candidates for a query embedding — the
/// retrieval stage the two-stage linker is generic over.
///
/// Contract (DESIGN.md §14): `top_k` returns candidates best-first with
/// a deterministic lowest-position tie-break, `len`/`dim` describe the
/// indexed table, `max_id` bounds the entity ids a search can return
/// (so a caller can validate the source against its knowledge base
/// once, up front), and `top_k_batch` must be bit-identical at any
/// worker count.
pub trait CandidateSource: Send + Sync {
    /// Number of indexed entities.
    fn len(&self) -> usize;

    /// True if nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed vectors.
    fn dim(&self) -> usize;

    /// The largest entity id a search can return, `None` when empty.
    fn max_id(&self) -> Option<EntityId>;

    /// Top-k candidates for one query, best first.
    fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)>;

    /// Top-k retrieval for every row of a `[q, dim]` query matrix, with
    /// queries split across workers; bit-identical to per-query
    /// [`CandidateSource::top_k`] at any [`mb_par::Threads`] value
    /// (each query's ranking is computed wholly within one worker).
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when `queries` is not rank-2
    /// or its width disagrees with a non-empty index — the serving path
    /// reports this as a failed request instead of aborting.
    fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: mb_par::Threads,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        check_queries("CandidateSource::top_k_batch", queries, self.dim(), self.len())?;
        Ok(mb_par::par_map_range(threads, queries.rows(), |i| self.top_k(queries.row(i), k)))
    }
}

/// Exact brute-force dense index.
#[derive(Debug, Clone)]
pub struct DenseIndex {
    vectors: Tensor,
    ids: Vec<EntityId>,
}

impl DenseIndex {
    /// Build from precomputed vectors (rows aligned with `ids`),
    /// rejecting misaligned inputs. This is the server-facing
    /// constructor: a serving process must degrade to an error
    /// response, not abort, when handed a malformed entity table.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when row count and id count
    /// differ, or the vectors are not a rank-2 tensor.
    pub fn try_from_vectors(vectors: Tensor, ids: Vec<EntityId>) -> mb_common::Result<Self> {
        if vectors.rank() != 2 {
            return Err(mb_common::Error::shape(
                "DenseIndex::try_from_vectors",
                "[n, d] vectors",
                format!("rank-{} tensor {:?}", vectors.rank(), vectors.shape()),
            ));
        }
        if vectors.rows() != ids.len() {
            return Err(mb_common::Error::shape(
                "DenseIndex::try_from_vectors",
                format!("{} ids (one per row)", vectors.rows()),
                format!("{} ids", ids.len()),
            ));
        }
        Ok(DenseIndex { vectors, ids })
    }

    /// Build from precomputed vectors (rows aligned with `ids`).
    ///
    /// Panicking convenience for tests and benches; production callers
    /// (the serving path) use [`DenseIndex::try_from_vectors`].
    ///
    /// # Panics
    /// Panics if row count and id count differ.
    pub fn from_vectors(vectors: Tensor, ids: Vec<EntityId>) -> Self {
        let (rows, n_ids) = (vectors.rows(), ids.len());
        DenseIndex::try_from_vectors(vectors, ids)
            .unwrap_or_else(|_| panic!("DenseIndex: {rows} rows vs {n_ids} ids"))
    }

    /// Embed and index a set of entities with a bi-encoder.
    pub fn build(
        model: &BiEncoder,
        vocab: &Vocab,
        cfg: &InputConfig,
        kb: &KnowledgeBase,
        ids: &[EntityId],
    ) -> Self {
        let bags: Vec<Vec<u32>> =
            ids.iter().map(|&id| entity_bag(vocab, cfg, kb.entity(id))).collect();
        let vectors = model.embed_entities(bags);
        DenseIndex { vectors, ids: ids.to_vec() }
    }

    /// Embed and index a set of entities, rejecting ids outside the
    /// knowledge base instead of panicking mid-embed — the serving and
    /// loadgen constructor, where a malformed dictionary must surface
    /// as a typed error.
    ///
    /// # Errors
    /// [`mb_common::Error::NotFound`] when any id is outside `kb`.
    pub fn try_build(
        model: &BiEncoder,
        vocab: &Vocab,
        cfg: &InputConfig,
        kb: &KnowledgeBase,
        ids: &[EntityId],
    ) -> mb_common::Result<Self> {
        if let Some(&bad) = ids.iter().find(|id| id.0 as usize >= kb.len()) {
            return Err(mb_common::Error::NotFound(format!(
                "dictionary entity {} outside knowledge base of {} entities",
                bad.0,
                kb.len()
            )));
        }
        Ok(Self::build(model, vocab, cfg, kb, ids))
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The indexed ids in row order.
    pub fn ids(&self) -> &[EntityId] {
        &self.ids
    }

    /// Exact top-k by dot product, descending.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        let scores = self.score_all(query);
        top_k_desc(&scores, k).into_iter().map(|i| (self.ids[i], scores[i])).collect()
    }

    /// Fused top-k retrieval for every row of a `[q, dim]` query
    /// matrix: queries are grouped into fixed blocks of [`QUERY_BLOCK`]
    /// and each entity row is streamed once per block, scored against
    /// every query in the block, and fed straight into per-query
    /// streaming [`TopK`] selectors — no per-query score array.
    ///
    /// Bit-identical to per-query [`DenseIndex::top_k`]: each dot
    /// product visits elements in the same order as
    /// [`DenseIndex::score_all`], candidates arrive in ascending row
    /// order, and [`TopK`] keeps exactly the set and order of
    /// [`top_k_desc`]. Blocks are a fixed function of query index and
    /// each query's ranking is computed wholly within one worker, so
    /// the result is bit-identical for any [`mb_par::Threads`] value.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when `queries` is not rank-2
    /// or its width disagrees with a non-empty index.
    pub fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: mb_par::Threads,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        check_queries("DenseIndex::top_k_batch", queries, self.dim(), self.len())?;
        let blocks = mb_par::par_chunk_ranges(threads, queries.rows(), QUERY_BLOCK, |_, range| {
            let nq = range.len();
            let qt = transpose_block(queries, &range);
            let mut sels: Vec<TopK> = (0..nq).map(|_| TopK::new(k.min(self.len()))).collect();
            let mut acc = vec![0.0f64; nq];
            for i in 0..self.vectors.rows() {
                dot_block_f64(self.vectors.row(i), &qt, nq, &mut acc);
                for (sel, &s) in sels.iter_mut().zip(&acc) {
                    sel.push(i, s);
                }
            }
            sels.into_iter()
                .map(|sel| sel.into_sorted().into_iter().map(|(i, s)| (self.ids[i], s)).collect())
                .collect::<Vec<Vec<(EntityId, f64)>>>()
        });
        Ok(blocks.into_iter().flatten().collect())
    }

    /// Dot product of the query against every indexed vector.
    pub fn score_all(&self, query: &[f64]) -> Vec<f64> {
        assert_eq!(
            query.len(),
            self.vectors.cols(),
            "query dim {} vs index dim {}",
            query.len(),
            self.vectors.cols()
        );
        (0..self.vectors.rows())
            .map(|i| self.vectors.row(i).iter().zip(query).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Storage of a [`QuantizedIndex`].
#[derive(Debug, Clone)]
enum QuantTable {
    F16(QuantF16),
    Int8(QuantI8),
}

/// A quantized copy of a [`DenseIndex`]: same ids and ranking
/// semantics, but the entity vectors are stored as f16 or per-row
/// symmetric int8 and scored without dequantizing to a full table.
///
/// Rankings carry the bounded-error contract of [`mb_tensor::quant`]
/// rather than bit equality with the exact index; near-tie candidates
/// may swap. Scoring stays bit-identical across thread counts.
#[derive(Debug, Clone)]
pub struct QuantizedIndex {
    table: QuantTable,
    ids: Vec<EntityId>,
}

impl QuantizedIndex {
    /// Quantize an exact index. Returns `None` for
    /// [`QuantMode::Exact`] — callers keep using the [`DenseIndex`]
    /// itself in that mode.
    pub fn from_dense(index: &DenseIndex, mode: QuantMode) -> Option<Self> {
        let table = match mode {
            QuantMode::Exact => return None,
            QuantMode::F16 => QuantTable::F16(QuantF16::from_tensor(&index.vectors)),
            QuantMode::Int8 => QuantTable::Int8(QuantI8::from_tensor(&index.vectors)),
        };
        Some(QuantizedIndex { table, ids: index.ids.clone() })
    }

    /// Assemble from a prebuilt f16 table (rows aligned with `ids`) —
    /// the shard-load path: `mb-store` persists the raw table bits, so
    /// serve start-up reloads them here without re-quantizing.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when row count and id count
    /// differ.
    pub fn from_f16(table: QuantF16, ids: Vec<EntityId>) -> mb_common::Result<Self> {
        if table.rows() != ids.len() {
            return Err(mb_common::Error::shape(
                "QuantizedIndex::from_f16",
                format!("{} ids (one per row)", table.rows()),
                format!("{} ids", ids.len()),
            ));
        }
        Ok(QuantizedIndex { table: QuantTable::F16(table), ids })
    }

    /// Assemble from a prebuilt int8 table (rows aligned with `ids`) —
    /// the shard-load path, like [`QuantizedIndex::from_f16`].
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when row count and id count
    /// differ.
    pub fn from_i8(table: QuantI8, ids: Vec<EntityId>) -> mb_common::Result<Self> {
        if table.rows() != ids.len() {
            return Err(mb_common::Error::shape(
                "QuantizedIndex::from_i8",
                format!("{} ids (one per row)", table.rows()),
                format!("{} ids", ids.len()),
            ));
        }
        Ok(QuantizedIndex { table: QuantTable::Int8(table), ids })
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        match &self.table {
            QuantTable::F16(t) => t.cols(),
            QuantTable::Int8(t) => t.cols(),
        }
    }

    /// The indexed ids in row order.
    pub fn ids(&self) -> &[EntityId] {
        &self.ids
    }

    /// Resident bytes of the stored vectors.
    pub fn bytes(&self) -> usize {
        match &self.table {
            QuantTable::F16(t) => t.bytes(),
            QuantTable::Int8(t) => t.bytes(),
        }
    }

    /// Quantized dot product of the query against every stored vector.
    pub fn score_all(&self, query: &[f64], threads: mb_par::Threads) -> Vec<f64> {
        match &self.table {
            QuantTable::F16(t) => t.score_all(query, threads),
            QuantTable::Int8(t) => t.score_all(query, threads),
        }
    }

    /// Top-k by quantized dot product, descending (deterministic
    /// lowest-index tie-break, like [`DenseIndex::top_k`]).
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        let scores = self.score_all(query, mb_par::Threads::single());
        top_k_desc(&scores, k).into_iter().map(|i| (self.ids[i], scores[i])).collect()
    }

    /// Fused top-k retrieval for every row of a `[q, dim]` query
    /// matrix, blocked like [`DenseIndex::top_k_batch`]: each stored
    /// row is decoded (f16) or loaded (int8) once per [`QUERY_BLOCK`]
    /// queries, and int8 queries are quantized once per block instead
    /// of once per row scan. Bit-identical to per-query
    /// [`QuantizedIndex::top_k`] at any [`mb_par::Threads`] value: the
    /// per-element products and the ascending-column fold match the
    /// `mb_tensor` scoring kernels exactly (f16 decode is exact, and
    /// the int8 path accumulates the same exact integer).
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when `queries` is not rank-2
    /// or its width disagrees with a non-empty index.
    pub fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: mb_par::Threads,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        check_queries("QuantizedIndex::top_k_batch", queries, self.dim(), self.len())?;
        let blocks =
            mb_par::par_chunk_ranges(threads, queries.rows(), QUERY_BLOCK, |_, range| match &self
                .table
            {
                QuantTable::F16(t) => self.block_f16(t, queries, range, k),
                QuantTable::Int8(t) => self.block_i8(t, queries, range, k),
            });
        Ok(blocks.into_iter().flatten().collect())
    }

    /// Rank one query block against an f16 table. Each row is decoded
    /// into a scratch buffer once and scored against the transposed
    /// query block with one multi-accumulator pass; `f16_to_f64` is
    /// exact, so `decoded[j] * q[j]` is the same product, in the same
    /// order, as the kernel's fused decode-and-multiply.
    fn block_f16(
        &self,
        t: &QuantF16,
        queries: &Tensor,
        range: std::ops::Range<usize>,
        k: usize,
    ) -> Vec<Vec<(EntityId, f64)>> {
        let cols = t.cols();
        let bits = t.bits();
        let nq = range.len();
        let qt = transpose_block(queries, &range);
        let mut sels: Vec<TopK> = (0..nq).map(|_| TopK::new(k.min(self.len()))).collect();
        let mut decoded = vec![0.0f64; cols];
        let mut acc = vec![0.0f64; nq];
        for i in 0..t.rows() {
            for (d, &h) in decoded.iter_mut().zip(&bits[i * cols..(i + 1) * cols]) {
                *d = f16_to_f64(h);
            }
            dot_block_f64(&decoded, &qt, nq, &mut acc);
            for (sel, &s) in sels.iter_mut().zip(&acc) {
                sel.push(i, s);
            }
        }
        self.collect_sels(sels)
    }

    /// Rank one query block against an int8 table, in row chunks small
    /// enough to stay cache-resident across the per-query passes: for
    /// each chunk, each query makes one contiguous [`dot_i8_i32`] pass
    /// (or the `i64` fallback for absurdly wide rows) into a score
    /// scratch, then offers the whole run to its selector via
    /// [`TopK::push_block`], whose chunk-max pre-filter skips runs that
    /// cannot enter the top-k. Queries are quantized once per block;
    /// products accumulate exactly, so the integer sum — and therefore
    /// the final `acc as f64 * (row_scale * query_scale)` — is
    /// bit-identical to the serial scoring kernel's fold, and the
    /// candidate indices arrive in the same ascending order.
    fn block_i8(
        &self,
        t: &QuantI8,
        queries: &Tensor,
        range: std::ops::Range<usize>,
        k: usize,
    ) -> Vec<Vec<(EntityId, f64)>> {
        let cols = t.cols();
        let codes = t.codes();
        let scales = t.scales();
        let preps: Vec<(Vec<i8>, f64)> =
            range.clone().map(|qi| quantize_i8(queries.row(qi))).collect();
        let mut sels: Vec<TopK> = (0..range.len()).map(|_| TopK::new(k.min(self.len()))).collect();
        let narrow = cols <= I8_EXACT_I32_COLS;
        let mut scratch = vec![0.0f64; SCORE_CHUNK.min(t.rows())];
        let mut lo = 0usize;
        while lo < t.rows() {
            let hi = (lo + SCORE_CHUNK).min(t.rows());
            let chs = &scales[lo..hi];
            for (sel, (qc, qs)) in sels.iter_mut().zip(&preps) {
                let sc = &mut scratch[..hi - lo];
                if narrow {
                    for ((s, r), &rs) in sc.iter_mut().zip(lo..hi).zip(chs) {
                        *s =
                            f64::from(dot_i8_i32(&codes[r * cols..(r + 1) * cols], qc)) * (rs * qs);
                    }
                } else {
                    for ((s, r), &rs) in sc.iter_mut().zip(lo..hi).zip(chs) {
                        *s = dot_i8_i64(&codes[r * cols..(r + 1) * cols], qc) as f64 * (rs * qs);
                    }
                }
                sel.push_block(lo, sc);
            }
            lo = hi;
        }
        self.collect_sels(sels)
    }

    /// Map finished per-query selectors to `(id, score)` rankings.
    fn collect_sels(&self, sels: Vec<TopK>) -> Vec<Vec<(EntityId, f64)>> {
        sels.into_iter()
            .map(|sel| sel.into_sorted().into_iter().map(|(i, s)| (self.ids[i], s)).collect())
            .collect()
    }
}

impl CandidateSource for DenseIndex {
    fn len(&self) -> usize {
        DenseIndex::len(self)
    }

    fn dim(&self) -> usize {
        DenseIndex::dim(self)
    }

    fn max_id(&self) -> Option<EntityId> {
        self.ids.iter().copied().max_by_key(|id| id.0)
    }

    fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        DenseIndex::top_k(self, query, k)
    }

    fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: mb_par::Threads,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        DenseIndex::top_k_batch(self, queries, k, threads)
    }
}

impl CandidateSource for QuantizedIndex {
    fn len(&self) -> usize {
        QuantizedIndex::len(self)
    }

    fn dim(&self) -> usize {
        QuantizedIndex::dim(self)
    }

    fn max_id(&self) -> Option<EntityId> {
        self.ids.iter().copied().max_by_key(|id| id.0)
    }

    fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        QuantizedIndex::top_k(self, query, k)
    }

    fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: mb_par::Threads,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        QuantizedIndex::top_k_batch(self, queries, k, threads)
    }
}

/// IVF-style approximate index: k-means centroids with inverted lists;
/// queries probe the `nprobe` nearest centroids only.
#[derive(Debug, Clone)]
pub struct PartitionedIndex {
    centroids: Tensor,
    lists: Vec<Vec<usize>>,
    vectors: Tensor,
    ids: Vec<EntityId>,
    nprobe: usize,
}

impl PartitionedIndex {
    /// Partition precomputed vectors into `nlist` clusters via a few
    /// rounds of Lloyd's algorithm.
    ///
    /// # Panics
    /// Panics if `nlist == 0` or there are fewer vectors than clusters.
    pub fn build(
        vectors: Tensor,
        ids: Vec<EntityId>,
        nlist: usize,
        nprobe: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(nlist > 0, "nlist must be positive");
        let n = vectors.rows();
        assert!(n >= nlist, "need at least {nlist} vectors, got {n}");
        assert_eq!(n, ids.len());
        let d = vectors.cols();
        // Init: random distinct rows.
        let picks = rng.sample_indices(n, nlist);
        let mut centroids = Tensor::zeros(vec![nlist, d]);
        for (c, &row) in picks.iter().enumerate() {
            centroids.row_mut(c).copy_from_slice(vectors.row(row));
        }
        let mut assign = vec![0usize; n];
        for _round in 0..8 {
            // Assign.
            for i in 0..n {
                let v = vectors.row(i);
                let mut best = (0usize, f64::NEG_INFINITY);
                for c in 0..nlist {
                    let s: f64 = centroids.row(c).iter().zip(v).map(|(a, b)| a * b).sum();
                    if s > best.1 {
                        best = (c, s);
                    }
                }
                assign[i] = best.0;
            }
            // Update.
            let mut sums = Tensor::zeros(vec![nlist, d]);
            let mut counts = vec![0usize; nlist];
            for i in 0..n {
                let c = assign[i];
                counts[c] += 1;
                for (s, &v) in sums.row_mut(c).iter_mut().zip(vectors.row(i)) {
                    *s += v;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    let src: Vec<f64> = sums.row(c).iter().map(|&x| x * inv).collect();
                    centroids.row_mut(c).copy_from_slice(&src);
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (i, &c) in assign.iter().enumerate() {
            lists[c].push(i);
        }
        PartitionedIndex { centroids, lists, vectors, ids, nprobe: nprobe.max(1).min(nlist) }
    }

    /// Approximate top-k: probe the `nprobe` nearest partitions.
    pub fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        let nlist = self.centroids.rows();
        let cscores: Vec<f64> = (0..nlist)
            .map(|c| self.centroids.row(c).iter().zip(query).map(|(a, b)| a * b).sum())
            .collect();
        let probes = top_k_desc(&cscores, self.nprobe);
        let mut cand_scores = Vec::new();
        let mut cand_rows = Vec::new();
        for c in probes {
            for &row in &self.lists[c] {
                let s: f64 = self.vectors.row(row).iter().zip(query).map(|(a, b)| a * b).sum();
                cand_scores.push(s);
                cand_rows.push(row);
            }
        }
        top_k_desc(&cand_scores, k)
            .into_iter()
            .map(|i| (self.ids[cand_rows[i]], cand_scores[i]))
            .collect()
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_index(n: usize, d: usize, seed: u64) -> (Tensor, Vec<EntityId>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut vectors = Tensor::randn(vec![n, d], 0.0, 1.0, &mut rng);
        // L2-normalize rows, as the bi-encoder would.
        for i in 0..n {
            let norm: f64 = vectors.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            for v in vectors.row_mut(i) {
                *v /= norm;
            }
        }
        let ids = (0..n as u32).map(EntityId).collect();
        (vectors, ids)
    }

    #[test]
    fn top_k_matches_naive_sort() {
        let (vectors, ids) = random_index(200, 8, 1);
        let index = DenseIndex::from_vectors(vectors.clone(), ids);
        let mut rng = Rng::seed_from_u64(2);
        let query: Vec<f64> = (0..8).map(|_| rng.gaussian()).collect();
        let got = index.top_k(&query, 10);
        let scores = index.score_all(&query);
        let mut order: Vec<usize> = (0..200).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        for (rank, (id, s)) in got.iter().enumerate() {
            assert_eq!(id.0 as usize, order[rank]);
            assert!((s - scores[order[rank]]).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_caps_at_len() {
        let (vectors, ids) = random_index(5, 4, 3);
        let index = DenseIndex::from_vectors(vectors, ids);
        let got = index.top_k(&[1.0, 0.0, 0.0, 0.0], 64);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn partitioned_index_high_recall_with_full_probe() {
        let (vectors, ids) = random_index(300, 8, 4);
        let exact = DenseIndex::from_vectors(vectors.clone(), ids.clone());
        let mut rng = Rng::seed_from_u64(5);
        let approx = PartitionedIndex::build(vectors, ids, 10, 10, &mut rng);
        let query: Vec<f64> = (0..8).map(|_| rng.gaussian()).collect();
        // Probing all partitions must equal exact retrieval.
        let e: Vec<EntityId> = exact.top_k(&query, 20).into_iter().map(|(id, _)| id).collect();
        let a: Vec<EntityId> = approx.top_k(&query, 20).into_iter().map(|(id, _)| id).collect();
        assert_eq!(e, a);
    }

    #[test]
    fn partitioned_index_partial_probe_trades_recall() {
        let (vectors, ids) = random_index(400, 8, 6);
        let exact = DenseIndex::from_vectors(vectors.clone(), ids.clone());
        let mut rng = Rng::seed_from_u64(7);
        let approx = PartitionedIndex::build(vectors, ids, 16, 4, &mut rng);
        let mut overlap = 0;
        let mut total = 0;
        for q in 0..20 {
            let mut qrng = Rng::seed_from_u64(100 + q);
            let query: Vec<f64> = (0..8).map(|_| qrng.gaussian()).collect();
            let e: std::collections::HashSet<u32> =
                exact.top_k(&query, 10).into_iter().map(|(id, _)| id.0).collect();
            let a: std::collections::HashSet<u32> =
                approx.top_k(&query, 10).into_iter().map(|(id, _)| id.0).collect();
            overlap += e.intersection(&a).count();
            total += 10;
        }
        let recall = overlap as f64 / total as f64;
        assert!(recall > 0.5, "recall {recall} too low even for 4/16 probes");
    }

    #[test]
    fn quantized_index_agrees_with_exact_on_clear_margins() {
        let (vectors, ids) = random_index(300, 16, 11);
        let exact = DenseIndex::from_vectors(vectors.clone(), ids.clone());
        assert!(QuantizedIndex::from_dense(&exact, QuantMode::Exact).is_none());
        let exact_bytes = vectors.numel() * std::mem::size_of::<f64>();
        for (mode, shrink) in [(QuantMode::F16, 4), (QuantMode::Int8, 2)] {
            let q = QuantizedIndex::from_dense(&exact, mode).expect("quantized");
            assert_eq!(q.len(), 300);
            assert!(!q.is_empty());
            assert!(
                exact_bytes / q.bytes() >= shrink,
                "{mode:?}: {exact_bytes} vs {} bytes",
                q.bytes()
            );
            let mut rng = Rng::seed_from_u64(12);
            let query: Vec<f64> = (0..16).map(|_| rng.gaussian()).collect();
            // The top-1 has a clear margin on random normalized data, so
            // quantization noise must not flip it.
            let e = exact.top_k(&query, 1)[0].0;
            let g = q.top_k(&query, 1)[0].0;
            assert_eq!(e, g, "{mode:?} flipped a clear-margin top-1");
            // Batched retrieval is bit-identical across thread counts.
            let queries = Tensor::randn(vec![20, 16], 0.0, 1.0, &mut rng);
            let serial = q.top_k_batch(&queries, 5, mb_par::Threads::single()).expect("batch");
            for t in [2usize, 4] {
                assert_eq!(
                    q.top_k_batch(&queries, 5, mb_par::Threads::new(t)).expect("batch"),
                    serial
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rows vs")]
    fn mismatched_ids_panic() {
        let (vectors, _) = random_index(10, 4, 8);
        DenseIndex::from_vectors(vectors, vec![EntityId(0)]);
    }

    #[test]
    fn try_from_vectors_is_fallible() {
        let (vectors, ids) = random_index(10, 4, 9);
        let index = DenseIndex::try_from_vectors(vectors.clone(), ids).expect("aligned");
        assert_eq!(index.len(), 10);
        assert_eq!(index.dim(), 4);
        let err = DenseIndex::try_from_vectors(vectors, vec![EntityId(0)]).unwrap_err();
        assert!(
            matches!(err, mb_common::Error::ShapeMismatch { .. }),
            "expected ShapeMismatch, got {err:?}"
        );
    }
}
