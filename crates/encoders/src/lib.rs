//! # mb-encoders
//!
//! The BLINK-style two-stage linker on the CPU-scale substrate:
//!
//! * [`biencoder::BiEncoder`] — independent mention/entity encoders over
//!   a shared token-embedding table, trained with the paper's in-batch
//!   negative loss (Eq. 6); powers dense candidate generation.
//! * [`crossencoder::CrossEncoder`] — joint mention–entity scorer over
//!   interaction features, trained with per-mention softmax ranking
//!   loss; powers candidate re-ranking.
//! * [`frozen`] — tape-free `Arc`-shared serving forwards for both
//!   encoders, bit-identical to the tape path (optionally with f16/int8
//!   quantized embedding tables under a bounded-error contract).
//! * [`retrieval`] — brute-force and partitioned (IVF-style) top-k dense
//!   indices over entity embeddings.
//! * [`input`] — featurization of mentions/entities into token bags and
//!   vocabulary construction.
//! * [`train`] — plain (unweighted) trainers used by the BLINK baseline;
//!   the meta-reweighted trainer lives in `mb-core`.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops are clearer in numeric kernels

pub mod biencoder;
pub mod crossencoder;
pub mod frozen;
pub mod input;
pub mod retrieval;
pub mod train;

pub use biencoder::{BiEncoder, BiEncoderConfig};
pub use crossencoder::{CrossEncoder, CrossEncoderConfig};
pub use frozen::{FrozenBiEncoder, FrozenCrossEncoder};
pub use input::{entity_bag, mention_bag, InputConfig, TrainPair};
pub use retrieval::{DenseIndex, QuantizedIndex};
