//! Tape-free frozen encoders — the serving-side forward path.
//!
//! [`FrozenBiEncoder`] and [`FrozenCrossEncoder`] replay exactly the
//! tensor ops of the tape forwards in [`crate::biencoder`] /
//! [`crate::crossencoder`] against an `Arc`-shared
//! [`mb_tensor::FrozenParams`] snapshot: no tape is allocated and no
//! parameter tensor is ever cloned per forward (`Params::inject`
//! clones *every* parameter — embedding table included — per batch).
//! Cloning a frozen encoder is an `Arc` bump, so every serving worker
//! shares one model.
//!
//! With [`QuantMode::Exact`] the frozen forward is **bit-identical**
//! to the tape forward at any thread count (pinned by the tests below
//! and `tests/proptest_frozen.rs`). With [`QuantMode::F16`] /
//! [`QuantMode::Int8`] the embedding table is quantized once at freeze
//! time and carries the bounded-error contract of
//! [`mb_tensor::quant`] instead of bit equality.

use crate::biencoder::{BiEncoderConfig, SideIds, EMBED_CHUNK};
use crate::crossencoder::{CandidateSet, CrossEncoderConfig, SCORE_CHUNK};
use mb_par::Threads;
use mb_tensor::frozen::{self, FrozenParams};
use mb_tensor::params::ParamId;
use mb_tensor::quant::{QuantF16, QuantI8};
use mb_tensor::{Params, QuantMode, Tensor};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Embedding-table storage of a frozen encoder.
#[derive(Debug)]
enum EmbTable {
    /// Use the `f64` master copy inside the frozen params (bit-exact).
    Exact,
    /// IEEE-754 binary16 copy, 4× smaller.
    F16(QuantF16),
    /// Per-row symmetric int8 copy, ~8× smaller.
    Int8(QuantI8),
}

impl EmbTable {
    fn build(mode: QuantMode, table: &Tensor) -> EmbTable {
        match mode {
            QuantMode::Exact => EmbTable::Exact,
            QuantMode::F16 => EmbTable::F16(QuantF16::from_tensor(table)),
            QuantMode::Int8 => EmbTable::Int8(QuantI8::from_tensor(table)),
        }
    }

    fn bag_embed(&self, exact: &Tensor, bags: &[Vec<u32>]) -> Tensor {
        match self {
            EmbTable::Exact => frozen::bag_embed(exact, bags),
            EmbTable::F16(t) => t.bag_embed(bags),
            EmbTable::Int8(t) => t.bag_embed(bags),
        }
    }

    fn bytes(&self, exact: &Tensor) -> usize {
        match self {
            EmbTable::Exact => exact.numel() * std::mem::size_of::<f64>(),
            EmbTable::F16(t) => t.bytes(),
            EmbTable::Int8(t) => t.bytes(),
        }
    }
}

#[derive(Debug)]
struct BiInner {
    cfg: BiEncoderConfig,
    params: FrozenParams,
    emb: ParamId,
    table: EmbTable,
    mention_side: SideIds,
    entity_side: SideIds,
    vocab_len: usize,
    mode: QuantMode,
}

/// The frozen bi-encoder: the tape-free counterpart of
/// [`crate::biencoder::BiEncoder`]'s embed path. Clone is an `Arc`
/// bump.
#[derive(Debug, Clone)]
pub struct FrozenBiEncoder {
    inner: Arc<BiInner>,
}

impl FrozenBiEncoder {
    pub(crate) fn new(
        cfg: BiEncoderConfig,
        params: &Params,
        emb: ParamId,
        mention_side: SideIds,
        entity_side: SideIds,
        vocab_len: usize,
        mode: QuantMode,
    ) -> Self {
        let params = FrozenParams::freeze(params);
        let table = EmbTable::build(mode, params.get(emb));
        FrozenBiEncoder {
            inner: Arc::new(BiInner {
                cfg,
                params,
                emb,
                table,
                mention_side,
                entity_side,
                vocab_len,
                mode,
            }),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &BiEncoderConfig {
        &self.inner.cfg
    }

    /// How the embedding table is stored and scored.
    pub fn mode(&self) -> QuantMode {
        self.inner.mode
    }

    /// Vocabulary size the source model was built for.
    pub fn vocab_len(&self) -> usize {
        self.inner.vocab_len
    }

    /// Resident bytes of the embedding table as served (quantized
    /// modes shrink this; the `f64` master copy inside the snapshot is
    /// shared by every handle either way).
    pub fn table_bytes(&self) -> usize {
        self.inner.table.bytes(self.inner.params.get(self.inner.emb))
    }

    /// True when both handles share one underlying model (no copy).
    pub fn shares_storage(&self, other: &FrozenBiEncoder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// One side of the encoder, exactly the op sequence of the tape
    /// forward: bag-embed → linear → tanh → linear → row-normalize.
    fn encode_side(&self, side: SideIds, bags: &[Vec<u32>]) -> Tensor {
        let p = &self.inner.params;
        let pooled = self.inner.table.bag_embed(p.get(self.inner.emb), bags);
        let h = frozen::linear(&pooled, p.get(side.w1), p.get(side.b1), Threads::single());
        let h = frozen::tanh(&h);
        let out = frozen::linear(&h, p.get(side.w2), p.get(side.b2), Threads::single());
        frozen::row_l2_normalize(&out, 1e-9)
    }

    fn embed(&self, bags: &[Vec<u32>], side: SideIds) -> Tensor {
        if bags.is_empty() {
            return Tensor::zeros(vec![0, self.inner.cfg.out_dim]);
        }
        self.encode_side(side, bags)
    }

    fn embed_chunked(&self, bags: &[Vec<u32>], side: SideIds, threads: Threads) -> Tensor {
        if threads.is_single() || bags.len() <= EMBED_CHUNK {
            return self.embed(bags, side);
        }
        let chunks = mb_par::par_chunks(threads, bags, EMBED_CHUNK, |_, c| self.embed(c, side));
        let mut data = Vec::with_capacity(bags.len() * self.inner.cfg.out_dim);
        for chunk in &chunks {
            data.extend_from_slice(chunk.data());
        }
        Tensor::from_vec(vec![bags.len(), self.inner.cfg.out_dim], data)
    }

    /// Tape-free batched mention encoding (see
    /// [`crate::biencoder::BiEncoder::embed_mentions_batch`]).
    pub fn embed_mentions_batch(&self, bags: &[Vec<u32>]) -> Tensor {
        self.embed(bags, self.inner.mention_side)
    }

    /// Tape-free batched entity encoding.
    pub fn embed_entities_batch(&self, bags: &[Vec<u32>]) -> Tensor {
        self.embed(bags, self.inner.entity_side)
    }

    /// [`FrozenBiEncoder::embed_mentions_batch`] with fixed
    /// [`EMBED_CHUNK`]-sized chunks on separate workers — bit-identical
    /// at every [`Threads`] value, like the tape path.
    pub fn embed_mentions_batch_with(&self, bags: &[Vec<u32>], threads: Threads) -> Tensor {
        self.embed_chunked(bags, self.inner.mention_side, threads)
    }

    /// [`FrozenBiEncoder::embed_entities_batch`] with fixed-size chunks
    /// on separate workers.
    pub fn embed_entities_batch_with(&self, bags: &[Vec<u32>], threads: Threads) -> Tensor {
        self.embed_chunked(bags, self.inner.entity_side, threads)
    }
}

/// Parameter handles of the cross-encoder, passed by
/// `CrossEncoder::freeze`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrossIds {
    pub(crate) emb: ParamId,
    pub(crate) w_sem: ParamId,
    pub(crate) b_sem: ParamId,
    pub(crate) w_surf: ParamId,
    pub(crate) b_surf: ParamId,
    pub(crate) w_out: ParamId,
    pub(crate) b_out: ParamId,
    pub(crate) gamma: ParamId,
}

#[derive(Debug)]
struct CrossInner {
    cfg: CrossEncoderConfig,
    params: FrozenParams,
    ids: CrossIds,
    table: EmbTable,
    mode: QuantMode,
}

/// The frozen cross-encoder: the tape-free counterpart of
/// [`crate::crossencoder::CrossEncoder::score_batch`]. Clone is an
/// `Arc` bump.
#[derive(Debug, Clone)]
pub struct FrozenCrossEncoder {
    inner: Arc<CrossInner>,
}

impl FrozenCrossEncoder {
    pub(crate) fn new(
        cfg: CrossEncoderConfig,
        params: &Params,
        ids: CrossIds,
        mode: QuantMode,
    ) -> Self {
        let params = FrozenParams::freeze(params);
        let table = EmbTable::build(mode, params.get(ids.emb));
        FrozenCrossEncoder { inner: Arc::new(CrossInner { cfg, params, ids, table, mode }) }
    }

    /// The model's configuration.
    pub fn config(&self) -> &CrossEncoderConfig {
        &self.inner.cfg
    }

    /// How the embedding table is stored and scored.
    pub fn mode(&self) -> QuantMode {
        self.inner.mode
    }

    /// Resident bytes of the embedding table as served.
    pub fn table_bytes(&self) -> usize {
        self.inner.table.bytes(self.inner.params.get(self.inner.ids.emb))
    }

    /// True when both handles share one underlying model (no copy).
    pub fn shares_storage(&self, other: &FrozenCrossEncoder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Pooled embeddings for `bags`, embedding each *distinct* bag once
    /// and copying its row to every duplicate position. Each row of
    /// `bag_embed` depends only on its own bag, so this is bit-identical
    /// to embedding the full list — it just skips the redundant work
    /// (the mention and surface bags repeat once per candidate).
    fn pooled_dedup(&self, exact: &Tensor, bags: &[Vec<u32>]) -> Tensor {
        let mut slot: BTreeMap<&[u32], usize> = BTreeMap::new();
        let mut uniq: Vec<Vec<u32>> = Vec::new();
        for bag in bags {
            if !slot.contains_key(bag.as_slice()) {
                slot.insert(bag.as_slice(), uniq.len());
                uniq.push(bag.clone());
            }
        }
        if uniq.len() == bags.len() {
            return self.inner.table.bag_embed(exact, bags);
        }
        let small = self.inner.table.bag_embed(exact, &uniq);
        let dim = small.shape()[1];
        let mut out = Tensor::zeros(vec![bags.len(), dim]);
        for (i, bag) in bags.iter().enumerate() {
            out.row_mut(i).copy_from_slice(small.row(slot[bag.as_slice()]));
        }
        out
    }

    /// Score `n` (mention, candidate) rows — exactly the op sequence
    /// of the tape's `score_rows`, returning the `[n, 1]` scores.
    fn score_rows(
        &self,
        m_bags: &[Vec<u32>],
        s_bags: &[Vec<u32>],
        e_bags: &[Vec<u32>],
        t_bags: &[Vec<u32>],
    ) -> Tensor {
        let n = m_bags.len();
        let p = &self.inner.params;
        let ids = self.inner.ids;
        let exact = p.get(ids.emb);
        let m_pool = self.pooled_dedup(exact, m_bags);
        let s_pool = self.pooled_dedup(exact, s_bags);
        let e_pool = self.pooled_dedup(exact, e_bags);
        let t_pool = self.pooled_dedup(exact, t_bags);
        let sem = m_pool.mul(&e_pool);
        let surf = s_pool.mul(&t_pool);
        let h_sem = frozen::linear(&sem, p.get(ids.w_sem), p.get(ids.b_sem), Threads::single());
        let h_surf = frozen::linear(&surf, p.get(ids.w_surf), p.get(ids.b_surf), Threads::single());
        let h = frozen::tanh(&h_sem.add(&h_surf));
        let mlp_scores = frozen::linear(&h, p.get(ids.w_out), p.get(ids.b_out), Threads::single());
        let dots = frozen::rows_dot(&m_pool, &e_pool);
        let dots_col = dots.reshape(vec![n, 1]);
        let dot_scores = dots_col.matmul(p.get(ids.gamma));
        mlp_scores.add(&dot_scores)
    }

    /// Tape-free batched scoring (see
    /// [`crate::crossencoder::CrossEncoder::score_batch`]): one fused
    /// forward over all `Σ len(setᵢ)` rows, empty sets yield empty
    /// score vectors.
    pub fn score_batch(&self, sets: &[CandidateSet]) -> Vec<Vec<f64>> {
        let total: usize = sets.iter().map(|s| s.len()).sum();
        if total == 0 {
            return sets.iter().map(|_| Vec::new()).collect();
        }
        let mut m_bags = Vec::with_capacity(total);
        let mut s_bags = Vec::with_capacity(total);
        let mut e_bags = Vec::with_capacity(total);
        let mut t_bags = Vec::with_capacity(total);
        for set in sets {
            for (e, t) in set.entities.iter().zip(&set.titles) {
                m_bags.push(set.mention.clone());
                s_bags.push(set.surface.clone());
                e_bags.push(e.clone());
                t_bags.push(t.clone());
            }
        }
        let scores = self.score_rows(&m_bags, &s_bags, &e_bags, &t_bags);
        let flat = scores.data();
        let mut out = Vec::with_capacity(sets.len());
        let mut offset = 0;
        for set in sets {
            // mb-lint: allow(alloc-in-hot-loop) -- the per-set Vec is the return value, not scratch
            out.push(flat[offset..offset + set.len()].to_vec());
            offset += set.len();
        }
        out
    }

    /// [`FrozenCrossEncoder::score_batch`] with fixed
    /// [`SCORE_CHUNK`]-sized chunks of sets scored on separate workers
    /// — bit-identical at every [`Threads`] value, like the tape path.
    pub fn score_batch_with(&self, sets: &[CandidateSet], threads: Threads) -> Vec<Vec<f64>> {
        if threads.is_single() || sets.len() <= SCORE_CHUNK {
            return self.score_batch(sets);
        }
        let chunks = mb_par::par_chunks(threads, sets, SCORE_CHUNK, |_, c| self.score_batch(c));
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biencoder::BiEncoder;
    use crate::crossencoder::CrossEncoder;
    use crate::input::{build_vocab, entity_bag, title_bag, InputConfig, TrainPair};
    use mb_common::Rng;
    use mb_datagen::{World, WorldConfig};

    fn setup() -> (World, mb_text::Vocab, Vec<TrainPair>) {
        let world = World::generate(WorldConfig::tiny(31));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(2);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 80, &mut rng);
        let cfg = InputConfig::default();
        let pairs: Vec<TrainPair> = ms
            .mentions
            .iter()
            .map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m))
            .collect();
        (world, vocab, pairs)
    }

    fn assert_bits_eq(got: &Tensor, want: &Tensor) {
        assert_eq!(got.shape(), want.shape());
        for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn frozen_bi_is_bit_identical_to_tape_at_any_thread_count() {
        let (_, vocab, pairs) = setup();
        let cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let model = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(5));
        let frozen = model.freeze(QuantMode::Exact);
        // 70 bags crosses the EMBED_CHUNK=32 chunked-dispatch threshold.
        let m_bags: Vec<Vec<u32>> = pairs.iter().take(70).map(|p| p.mention.clone()).collect();
        let e_bags: Vec<Vec<u32>> = pairs.iter().take(70).map(|p| p.entity.clone()).collect();
        let want_m = model.embed_mentions_batch(&m_bags);
        let want_e = model.embed_entities_batch(&e_bags);
        assert_bits_eq(&frozen.embed_mentions_batch(&m_bags), &want_m);
        assert_bits_eq(&frozen.embed_entities_batch(&e_bags), &want_e);
        for t in [1usize, 2, 3, 4] {
            let threads = Threads::new(t);
            assert_bits_eq(&frozen.embed_mentions_batch_with(&m_bags, threads), &want_m);
            assert_bits_eq(&frozen.embed_entities_batch_with(&e_bags, threads), &want_e);
        }
        assert_eq!(frozen.embed_mentions_batch(&[]).rows(), 0);
        assert_eq!(frozen.vocab_len(), model.vocab_len());
    }

    #[test]
    fn frozen_clone_shares_one_model() {
        let (_, vocab, _) = setup();
        let cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let model = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(5));
        let frozen = model.freeze(QuantMode::Exact);
        assert!(frozen.clone().shares_storage(&frozen));
        assert!(!model.freeze(QuantMode::Exact).shares_storage(&frozen));
        let cross = CrossEncoder::new(
            &vocab,
            CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            &mut Rng::seed_from_u64(6),
        );
        let fc = cross.freeze(QuantMode::Exact);
        assert!(fc.clone().shares_storage(&fc));
    }

    fn candidate_sets(
        world: &World,
        vocab: &mb_text::Vocab,
        pairs: &[TrainPair],
        k: usize,
    ) -> Vec<CandidateSet> {
        let icfg = InputConfig::default();
        let ids = world.kb().domain_entities(world.domain("TargetX").id);
        pairs
            .iter()
            .enumerate()
            .map(|(i, pair)| {
                let mut r = Rng::seed_from_u64(i as u64);
                let candidates = (0..k)
                    .map(|_| {
                        let e = world.kb().entity(*r.choose(ids));
                        (entity_bag(vocab, &icfg, e), title_bag(vocab, e))
                    })
                    .collect();
                CandidateSet::new(pair, candidates, Some(0))
            })
            .collect()
    }

    #[test]
    fn frozen_cross_is_bit_identical_to_tape_at_any_thread_count() {
        let (world, vocab, pairs) = setup();
        let cfg = CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() };
        let model = CrossEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(7));
        let frozen = model.freeze(QuantMode::Exact);
        // 20 sets crosses the SCORE_CHUNK=8 chunked-dispatch threshold;
        // include an empty set mid-batch.
        let mut sets = candidate_sets(&world, &vocab, &pairs[..20], 6);
        sets[9].entities.clear();
        sets[9].titles.clear();
        let want = model.score_batch(&sets);
        let got = frozen.score_batch(&sets);
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.len(), g.len());
            for (x, y) in w.iter().zip(g) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for t in [2usize, 3, 4] {
            let par = frozen.score_batch_with(&sets, Threads::new(t));
            assert_eq!(par, want);
        }
    }

    #[test]
    fn quantized_tables_shrink_and_stay_close() {
        let (world, vocab, pairs) = setup();
        let cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let model = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(9));
        let exact = model.freeze(QuantMode::Exact);
        let f16 = model.freeze(QuantMode::F16);
        let i8 = model.freeze(QuantMode::Int8);
        assert_eq!(exact.table_bytes(), f16.table_bytes() * 4);
        assert!(exact.table_bytes() / i8.table_bytes() >= 2, "int8 must at least halve the table");
        assert_eq!(f16.mode(), QuantMode::F16);
        let bags: Vec<Vec<u32>> = pairs.iter().take(12).map(|p| p.mention.clone()).collect();
        let want = exact.embed_mentions_batch(&bags);
        for (label, frozen, bound) in
            [("f16", &f16, 5e-3), ("int8", &i8, 5e-2), ("exact", &exact, 0.0)]
        {
            let got = frozen.embed_mentions_batch(&bags);
            let max_err = want
                .data()
                .iter()
                .zip(got.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err <= bound, "{label}: max abs err {max_err} > {bound}");
        }
        // Cross-encoder quantized scoring stays close too.
        let cross = CrossEncoder::new(
            &vocab,
            CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            &mut Rng::seed_from_u64(10),
        );
        let sets = candidate_sets(&world, &vocab, &pairs[..6], 5);
        let want = cross.score_batch(&sets);
        let got = cross.freeze(QuantMode::Int8).score_batch(&sets);
        for (w, g) in want.iter().flatten().zip(got.iter().flatten()) {
            assert!((w - g).abs() < 0.3, "int8 score drift: {w} vs {g}");
        }
    }
}
