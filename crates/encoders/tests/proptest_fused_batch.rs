//! Property suite for the fused multi-query retrieval path
//! (DESIGN.md §16): for ANY batch size, ANY k, and ANY worker count,
//! `top_k_batch` must be **byte-for-byte** identical to per-query
//! `top_k` — same entity ids, same `f64::to_bits` score patterns. The
//! fixtures are the adversarial near-tie distributions from the
//! quantized-retrieval suite, so the lowest-position tie-break is
//! actually exercised, not just the clear-margin happy path.

use mb_check::gen;
use mb_check::prop_assert_eq;
use mb_common::Rng;
use mb_encoders::{DenseIndex, QuantizedIndex};
use mb_kb::EntityId;
use mb_par::Threads;
use mb_tensor::{QuantMode, Tensor};

/// An index whose rows are small perturbations of one base direction:
/// every pair of scores is a near tie by construction.
fn near_tie_index(n: usize, dim: usize, spread: f64, seed: u64) -> DenseIndex {
    let mut rng = Rng::seed_from_u64(seed);
    let base: Vec<f64> = (0..dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        for b in &base {
            data.push(b + (rng.f64() * 2.0 - 1.0) * spread);
        }
    }
    let ids = (0..n as u32).map(EntityId).collect();
    DenseIndex::from_vectors(Tensor::from_vec(vec![n, dim], data), ids)
}

/// A `[batch, dim]` query matrix drawn near the index distribution so
/// rankings hit real near-ties.
fn query_matrix(batch: usize, dim: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let data: Vec<f64> = (0..batch * dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
    Tensor::from_vec(vec![batch, dim], data)
}

/// Render rankings to raw bytes: ids plus exact score bit patterns.
fn bits(rankings: &[Vec<(EntityId, f64)>]) -> Vec<Vec<(u32, u64)>> {
    rankings.iter().map(|r| r.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()).collect()
}

mb_check::check! {
    #![config(cases = 24)]

    fn dense_fused_batch_is_bit_identical_to_serial(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, dim) = (4 + rng.below(60), 3 + rng.below(14));
        let batch = 1 + rng.below(64);
        let k = 1 + rng.below(n + 4); // sometimes k > n
        let spread = [1e-12, 1e-6, 1e-2][rng.below(3)];
        let index = near_tie_index(n, dim, spread, seed ^ 1);
        let queries = query_matrix(batch, dim, seed ^ 2);
        let serial: Vec<Vec<(EntityId, f64)>> =
            (0..batch).map(|i| index.top_k(queries.row(i), k)).collect();
        let want = bits(&serial);
        for t in 1..4 {
            let fused = index.top_k_batch(&queries, k, Threads::new(t)).expect("fused");
            prop_assert_eq!(
                &bits(&fused), &want,
                "dense: batch={} k={} n={} threads={}", batch, k, n, t
            );
        }
    }

    fn quantized_fused_batch_is_bit_identical_to_serial(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, dim) = (4 + rng.below(60), 3 + rng.below(14));
        let batch = 1 + rng.below(64);
        let k = 1 + rng.below(n + 4);
        let spread = [1e-6, 1e-3, 1e-1][rng.below(3)];
        let dense = near_tie_index(n, dim, spread, seed ^ 3);
        let queries = query_matrix(batch, dim, seed ^ 4);
        for mode in [QuantMode::F16, QuantMode::Int8] {
            let index = QuantizedIndex::from_dense(&dense, mode).expect("lossy mode");
            let serial: Vec<Vec<(EntityId, f64)>> =
                (0..batch).map(|i| index.top_k(queries.row(i), k)).collect();
            let want = bits(&serial);
            for t in 1..4 {
                let fused = index.top_k_batch(&queries, k, Threads::new(t)).expect("fused");
                prop_assert_eq!(
                    &bits(&fused), &want,
                    "{:?}: batch={} k={} n={} threads={}", mode, batch, k, n, t
                );
            }
        }
    }
}

#[test]
fn empty_batches_and_bad_shapes_are_handled_without_panicking() {
    let index = near_tie_index(12, 6, 1e-3, 9);
    // Zero queries: empty result at any thread count.
    let empty = Tensor::zeros(vec![0, 6]);
    assert!(index.top_k_batch(&empty, 4, Threads::new(2)).expect("empty").is_empty());
    // Rank-1 queries and wrong widths are typed errors, not panics.
    let rank1 = Tensor::zeros(vec![6]);
    assert!(index.top_k_batch(&rank1, 4, Threads::single()).is_err());
    let wide = Tensor::zeros(vec![2, 7]);
    assert!(index.top_k_batch(&wide, 4, Threads::single()).is_err());
    let q = QuantizedIndex::from_dense(&index, QuantMode::F16).expect("f16");
    assert!(q.top_k_batch(&rank1, 4, Threads::single()).is_err());
    assert!(q.top_k_batch(&wide, 4, Threads::single()).is_err());
    assert!(q.top_k_batch(&empty, 4, Threads::new(3)).expect("empty").is_empty());
}
