//! Property-based tests of encoder and retrieval invariants.

use mb_check::gen::{self, U32In, VecGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_common::Rng;
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::retrieval::DenseIndex;
use mb_kb::EntityId;
use mb_tensor::Tensor;
use mb_text::vocab::VocabBuilder;

fn vocab(n_words: usize) -> mb_text::Vocab {
    let mut b = VocabBuilder::new();
    for i in 0..n_words {
        b.add(&format!("word{i}"));
    }
    b.build(1)
}

fn bag(vocab_len: usize) -> VecGen<U32In> {
    gen::vec_of(gen::u32_in(0..vocab_len as u32), 1..12)
}

mb_check::check! {
    #![config(cases = 32)]

    fn encodings_are_unit_norm_and_deterministic(
        seed in gen::u64_in(0..1000),
        bags in gen::vec_of(bag(40), 1..6),
    ) {
        let v = vocab(39); // +1 for <unk> = 40 ids
        let cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let model = BiEncoder::new(&v, cfg, &mut Rng::seed_from_u64(seed));
        let a = model.embed_entities(bags.clone());
        let b = model.embed_entities(bags.clone());
        prop_assert_eq!(a.clone(), b);
        for i in 0..a.rows() {
            let n: f64 = a.row(i).iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((n - 1.0).abs() < 1e-6, "row norm {n}");
        }
    }

    fn bag_order_does_not_matter_for_mean_pooling(
        seed in gen::u64_in(0..1000),
        mut bag in bag(40),
    ) {
        let v = vocab(39);
        let cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let model = BiEncoder::new(&v, cfg, &mut Rng::seed_from_u64(seed));
        let a = model.embed_mentions(vec![bag.clone()]);
        bag.reverse();
        let b = model.embed_mentions(vec![bag]);
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    fn dense_index_top_k_is_sorted_and_within_bounds(
        n in gen::usize_in(2..60),
        d in gen::usize_in(2..8),
        k in gen::usize_in(1..70),
        seed in gen::u64_in(0..500),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let vectors = Tensor::randn(vec![n, d], 0.0, 1.0, &mut rng);
        let ids: Vec<EntityId> = (0..n as u32).map(EntityId).collect();
        let index = DenseIndex::from_vectors(vectors, ids);
        let query: Vec<f64> = (0..d).map(|_| rng.gaussian()).collect();
        let top = index.top_k(&query, k);
        prop_assert_eq!(top.len(), k.min(n));
        for pair in top.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1);
        }
        // Scores agree with a direct recomputation.
        let all = index.score_all(&query);
        for (id, s) in &top {
            prop_assert!((all[id.0 as usize] - s).abs() < 1e-12);
        }
    }
}
