//! Property tests for the quantized retrieval error contract on
//! adversarial *near-tie* score distributions — entity vectors built so
//! exact scores bunch within tiny margins of each other, the worst case
//! for a lossy table. Two guarantees are pinned (DESIGN.md §12):
//!
//! 1. the quantized score error never exceeds an analytic bound
//!    (f16: per-element relative error ≤ 2⁻¹¹; int8: half a
//!    quantization step per element, both summed over the dot), and
//! 2. whenever the exact top-k margin exceeds twice that bound, the
//!    quantized top-k agrees with f32 scoring *exactly* — lossy
//!    storage may only reorder candidates the exact scores could not
//!    separate by more than the guaranteed error.

use mb_check::gen;
use mb_check::{prop_assert, prop_assert_eq};
use mb_common::Rng;
use mb_encoders::{DenseIndex, QuantizedIndex};
use mb_kb::EntityId;
use mb_tensor::{QuantMode, Tensor};

/// An index whose rows are small perturbations of one base direction:
/// every pair of scores is a near tie by construction.
fn near_tie_index(n: usize, dim: usize, spread: f64, seed: u64) -> DenseIndex {
    let mut rng = Rng::seed_from_u64(seed);
    let base: Vec<f64> = (0..dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        for b in &base {
            data.push(b + (rng.f64() * 2.0 - 1.0) * spread);
        }
    }
    let ids = (0..n as u32).map(EntityId).collect();
    DenseIndex::from_vectors(Tensor::from_vec(vec![n, dim], data), ids)
}

/// Worst-case absolute score error of quantizing `index` under `mode`,
/// for a given query: f16 stores each element within `|v|·2⁻¹¹`, int8
/// within half a per-row step; a dot accumulates at most the sum of
/// per-element bounds (plus float-rounding headroom).
fn error_bound(index: &DenseIndex, quant: &QuantizedIndex, query: &[f64]) -> f64 {
    let exact = index.score_all(query);
    let lossy = quant.score_all(query, mb_par::Threads::single());
    exact.iter().zip(&lossy).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
}

mb_check::check! {
    #![config(cases = 32)]

    fn quantized_scores_stay_within_the_analytic_bound(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, dim) = (8 + rng.below(56), 4 + rng.below(28));
        let index = near_tie_index(n, dim, 1e-3, seed ^ 1);
        let query: Vec<f64> = (0..dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
        let q1 = |v: f64| v.abs();
        let query_l1: f64 = query.iter().copied().map(q1).sum();
        for (mode, per_elem) in [(QuantMode::F16, 1.0 / 2048.0), (QuantMode::Int8, 1.0 / 127.0)] {
            let quant = QuantizedIndex::from_dense(&index, mode).expect("lossy mode");
            // Elements are bounded by ~1 + spread, so per-element error
            // is ≤ per_elem·max_abs; the dot accumulates ≤ l1(query)
            // of it. int8 additionally quantizes the query itself.
            let bound = 2.5 * per_elem * (query_l1 + dim as f64);
            let worst = error_bound(&index, &quant, &query);
            prop_assert!(
                worst <= bound,
                "mode={:?} worst={} bound={} n={} dim={}", mode, worst, bound, n, dim
            );
        }
    }

    fn top_k_agrees_exactly_when_the_margin_clears_the_error(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, dim, k) = (10 + rng.below(50), 4 + rng.below(24), 1 + rng.below(8));
        // Spreads from genuinely adversarial (scores within ~1e-4 of
        // each other) to comfortably separated.
        let spread = [1e-4, 1e-3, 1e-2, 1e-1][rng.below(4)];
        let index = near_tie_index(n, dim, spread, seed ^ 2);
        let query: Vec<f64> = (0..dim).map(|_| rng.f64() * 2.0 - 1.0).collect();
        let exact_top = index.top_k(&query, k);
        prop_assert_eq!(exact_top.len(), k.min(n));
        let mut sorted = index.score_all(&query);
        sorted.sort_by(|a, b| b.total_cmp(a));
        for mode in [QuantMode::F16, QuantMode::Int8] {
            let quant = QuantizedIndex::from_dense(&index, mode).expect("lossy mode");
            let worst = error_bound(&index, &quant, &query);
            let quant_top = quant.top_k(&query, k);
            prop_assert_eq!(quant_top.len(), exact_top.len());
            let margin = sorted[k.min(n) - 1] - sorted.get(k.min(n)).copied()
                .unwrap_or(f64::NEG_INFINITY);
            if margin > 2.0 * worst {
                // The k-th/(k+1)-th gap exceeds any possible score
                // perturbation: top-k *membership* must agree exactly
                // (ranks inside the top-k may still swap on near-ties).
                let mut want: Vec<u32> = exact_top.iter().map(|&(id, _)| id.0).collect();
                let mut got: Vec<u32> = quant_top.iter().map(|&(id, _)| id.0).collect();
                want.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(
                    &want, &got,
                    "mode={:?} margin={} worst={} spread={}", mode, margin, worst, spread
                );
            } else {
                // Inside the error band only near-ties may swap: every
                // quantized pick's exact score is within 2·worst of the
                // exact k-th score.
                let kth = sorted[k.min(n) - 1];
                let exact_scores = index.score_all(&query);
                for &(id, _) in &quant_top {
                    let s = exact_scores[id.0 as usize];
                    prop_assert!(
                        s >= kth - 2.0 * worst,
                        "mode={:?} id={} score={} kth={} worst={}", mode, id.0, s, kth, worst
                    );
                }
            }
        }
    }
}
