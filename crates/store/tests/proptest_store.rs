//! Property suites for the sharded entity store (DESIGN.md §14):
//! shard and store round-trips are exact, any single bit-flip or
//! truncation of an on-disk file is rejected at open (all-or-nothing),
//! the store-assembled quantized index is bit-identical to the
//! in-memory quantizer, and IVF build/search is bit-identical across
//! `mb-par` worker counts.

use mb_check::gen;
use mb_check::{prop_assert, prop_assert_eq};
use mb_par::Threads;
use mb_store::{
    CandidateSource, EntityStore, IvfConfig, IvfIndex, Shard, StoreBuilder, StoreConfig,
    StoreRecord, MANIFEST,
};
use mb_tensor::QuantMode;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fresh scratch directory per call (same process-scoped hygiene as
/// the serve chaos tests).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mb-store-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Deterministic records with the given per-record vectors.
fn records_from(vectors: &[Vec<f64>]) -> Vec<StoreRecord> {
    vectors
        .iter()
        .enumerate()
        .map(|(i, v)| StoreRecord {
            title: format!("entity {i}"),
            description: format!("synthetic description of entity {i}, length varies {}", i * 7),
            vector: v.clone(),
        })
        .collect()
}

/// Build a small store from streamed synthetic entities.
fn streamed_store(
    dir: &std::path::Path,
    entities: usize,
    seed: u64,
    quant: QuantMode,
    shard_capacity: usize,
) -> (EntityStore, Vec<StoreRecord>) {
    let stream = mb_datagen::EntityStream::new(mb_datagen::StreamConfig {
        chunk: 97, // deliberately coprime with shard capacity
        ..mb_datagen::StreamConfig::tiny(entities, seed)
    })
    .expect("stream config");
    let dim = stream.config().dim;
    let mut builder =
        StoreBuilder::create(dir, StoreConfig { shard_capacity, dim, quant }).expect("builder");
    let mut kept = Vec::with_capacity(entities);
    for chunk in stream {
        for e in chunk {
            let rec = StoreRecord { title: e.title, description: e.description, vector: e.vector };
            builder.push(rec.clone()).expect("push");
            kept.push(rec);
        }
    }
    (builder.finish().expect("finish"), kept)
}

mb_check::check! {
    #![config(cases = 24)]

    fn shard_round_trips_exactly(
        n in gen::usize_in(1..40),
        dim in gen::usize_in(1..9),
        seed in gen::u64_any(),
        int8 in gen::usize_in(0..2),
    ) {
        let quant = if int8 == 1 { QuantMode::Int8 } else { QuantMode::F16 };
        let mut rng = mb_common::Rng::seed_from_u64(seed);
        let vectors: Vec<Vec<f64>> =
            (0..n).map(|_| (0..dim).map(|_| rng.gaussian()).collect()).collect();
        let records = records_from(&vectors);
        let dir = scratch("roundtrip");
        let path = dir.join("shard-00000.mbs");
        mb_store::shard::write_shard(&path, 0, 0, dim, quant, &records).expect("write");
        let shard = Shard::open(&path).expect("open");
        prop_assert_eq!(shard.len(), n);
        prop_assert_eq!(shard.dim(), dim);
        prop_assert_eq!(shard.quant_mode(), quant);
        // Text round-trips byte-exact; vectors round-trip through the
        // quantizer, so compare against an in-memory quantization of
        // the same tensor.
        let flat: Vec<f64> = vectors.iter().flatten().copied().collect();
        let tensor = mb_tensor::Tensor::from_vec(vec![n, dim], flat);
        let mut want = vec![0.0f64; dim];
        let mut got = vec![0.0f64; dim];
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(shard.title(i).expect("title"), rec.title.clone());
            prop_assert_eq!(shard.description(i).expect("desc"), rec.description.clone());
            match quant {
                QuantMode::F16 => {
                    let q = mb_tensor::quant::QuantF16::from_tensor(&tensor);
                    for (j, w) in want.iter_mut().enumerate() { *w = q.get(i, j); }
                }
                QuantMode::Int8 => {
                    let q = mb_tensor::quant::QuantI8::from_tensor(&tensor);
                    for (j, w) in want.iter_mut().enumerate() { *w = q.get(i, j); }
                }
                QuantMode::Exact => unreachable!(),
            }
            shard.dequant_row_into(i, &mut got);
            for j in 0..dim {
                prop_assert!(want[j].to_bits() == got[j].to_bits(), "row {i} col {j}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn any_single_bit_flip_is_rejected(
        byte_pick in gen::usize_in(0..100_000),
        bit in gen::usize_in(0..8),
    ) {
        let vectors: Vec<Vec<f64>> =
            (0..12).map(|i| (0..4).map(|j| ((i * 4 + j) as f64).sin()).collect()).collect();
        let dir = scratch("bitflip");
        let path = dir.join("shard-00000.mbs");
        mb_store::shard::write_shard(&path, 0, 0, 4, QuantMode::Int8, &records_from(&vectors))
            .expect("write");
        let mut bytes = std::fs::read(&path).expect("read shard bytes");
        let idx = byte_pick % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let opened = Shard::open(&path);
        prop_assert!(opened.is_err(), "flip at byte {idx} bit {bit} was not rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn any_truncation_is_rejected(cut in gen::usize_in(0..100_000)) {
        let vectors: Vec<Vec<f64>> =
            (0..9).map(|i| (0..3).map(|j| ((i * 3 + j) as f64).cos()).collect()).collect();
        let dir = scratch("trunc");
        let path = dir.join("shard-00000.mbs");
        mb_store::shard::write_shard(&path, 0, 0, 3, QuantMode::F16, &records_from(&vectors))
            .expect("write");
        let bytes = std::fs::read(&path).expect("read shard bytes");
        let keep = cut % bytes.len(); // strict prefix
        std::fs::write(&path, &bytes[..keep]).expect("write truncated");
        prop_assert!(Shard::open(&path).is_err(), "prefix of {keep}/{} parsed", bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn ivf_fused_batch_is_bit_identical_to_serial(
        seed in gen::u64_any(),
        int8 in gen::usize_in(0..2),
        nprobe_pick in gen::usize_in(0..3),
        batch in gen::usize_in(1..65),
    ) {
        // DESIGN.md §16: the fused list-grouped batch path must be
        // byte-for-byte identical to serial per-query probing — same
        // ids, same `to_bits` scores — at every nprobe and worker
        // count, for both shard table encodings.
        let quant = if int8 == 1 { QuantMode::Int8 } else { QuantMode::F16 };
        let dir = scratch("ivf-fused");
        let (store, _) = streamed_store(&dir, 300, seed, quant, 64);
        let dim = store.dim();
        let store = Arc::new(store);
        let cfg = IvfConfig { nlist: 12, nprobe: 4, train_cap: 256, rounds: 4, seed: 7 };
        let mut ivf = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(2)).expect("build");
        ivf.set_nprobe([1, 4, 16][nprobe_pick]);
        let mut rng = mb_common::Rng::seed_from_u64(seed ^ 0x5EED);
        let mut qdata = Vec::with_capacity(batch * dim);
        for qi in 0..batch {
            // Half the queries sit near real entities (the serving
            // distribution, rich in near-ties), half are random.
            if qi % 2 == 0 {
                let mut q = vec![0.0f64; dim];
                store.dequant_row_into(rng.below(store.len()), &mut q);
                for x in q.iter_mut() { *x += 0.05 * rng.gaussian(); }
                qdata.extend_from_slice(&q);
            } else {
                qdata.extend((0..dim).map(|_| rng.gaussian()));
            }
        }
        let queries = mb_tensor::Tensor::from_vec(vec![batch, dim], qdata);
        let serial: Vec<Vec<(u32, u64)>> = (0..batch)
            .map(|qi| {
                ivf.top_k(queries.row(qi), 16)
                    .into_iter()
                    .map(|(id, s)| (id.0, s.to_bits()))
                    .collect()
            })
            .collect();
        for t in 1..4 {
            let fused = ivf.top_k_batch(&queries, 16, Threads::new(t)).expect("fused");
            let got: Vec<Vec<(u32, u64)>> = fused
                .into_iter()
                .map(|r| r.into_iter().map(|(id, s)| (id.0, s.to_bits())).collect())
                .collect();
            prop_assert_eq!(
                &got, &serial,
                "quant={:?} nprobe={} batch={} threads={}", quant, ivf.nprobe(), batch, t
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn ivf_build_and_search_are_worker_count_invariant(
        seed in gen::u64_any(),
        workers in gen::usize_in(2..9),
    ) {
        let dir = scratch("ivf-det");
        let (store, _) = streamed_store(&dir, 300, seed, QuantMode::F16, 64);
        let store = Arc::new(store);
        let cfg = IvfConfig { nlist: 12, nprobe: 4, train_cap: 256, rounds: 4, seed: 7 };
        let a = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(1)).expect("build@1");
        let b = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(workers))
            .expect("build@n");
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        let mut rng = mb_common::Rng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..5 {
            let q: Vec<f64> = (0..store.dim()).map(|_| rng.gaussian()).collect();
            let ra = a.top_k(&q, 16);
            let rb = b.top_k(&q, 16);
            prop_assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb.iter()) {
                prop_assert!(x.0 == y.0 && x.1.to_bits() == y.1.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn store_round_trips_across_shards_and_streams_bounded() {
    let dir = scratch("multi");
    let (store, kept) = streamed_store(&dir, 150, 11, QuantMode::Int8, 32);
    // 150 entities at capacity 32 → shards of 32,32,32,32,22.
    assert_eq!(store.len(), 150);
    assert_eq!(store.shards().len(), 5);
    assert_eq!(store.shards()[4].len(), 22);
    for (i, rec) in kept.iter().enumerate() {
        let id = mb_kb::EntityId(u32::try_from(i).expect("small id"));
        assert_eq!(store.title(id).expect("title"), rec.title);
        assert_eq!(store.description(id).expect("desc"), rec.description);
    }
    assert!(store.title(mb_kb::EntityId(150)).is_err());
    // Reopen: same contents (open is pure).
    let again = EntityStore::open(&dir).expect("reopen");
    assert_eq!(again.len(), store.len());
    assert_eq!(again.title(mb_kb::EntityId(149)).expect("title"), kept[149].title);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_quantized_index_is_bit_identical_to_in_memory_quantizer() {
    // The PR 6 residual, pinned: loading tables from shard sections
    // must produce exactly what quantizing the full embedding matrix
    // in memory produces — same bits, same scores.
    for quant in [QuantMode::F16, QuantMode::Int8] {
        let dir = scratch("pin");
        let (store, kept) = streamed_store(&dir, 120, 23, quant, 50);
        let from_store = store.quantized_index().expect("store index");
        let n = kept.len();
        let dim = store.dim();
        let flat: Vec<f64> = kept.iter().flat_map(|r| r.vector.iter().copied()).collect();
        let tensor = mb_tensor::Tensor::from_vec(vec![n, dim], flat);
        let ids: Vec<mb_kb::EntityId> =
            (0..u32::try_from(n).expect("small")).map(mb_kb::EntityId).collect();
        let dense =
            mb_encoders::retrieval::DenseIndex::try_from_vectors(tensor, ids).expect("dense");
        let mode = quant;
        let in_memory =
            mb_encoders::retrieval::QuantizedIndex::from_dense(&dense, mode).expect("quantized");
        let mut rng = mb_common::Rng::seed_from_u64(99);
        for _ in 0..10 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gaussian()).collect();
            let a = from_store.top_k(&q, n);
            let b = in_memory.top_k(&q, n);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.0, y.0, "{quant:?}");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "{quant:?}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn manifest_corruption_and_size_drift_are_rejected() {
    let dir = scratch("manifest");
    let (store, _) = streamed_store(&dir, 40, 5, QuantMode::F16, 16);
    drop(store);
    // Flip one bit in the manifest body.
    let mpath = dir.join(MANIFEST);
    let mut bytes = std::fs::read(&mpath).expect("manifest bytes");
    let idx = bytes.len() / 2;
    bytes[idx] ^= 0x10;
    std::fs::write(&mpath, &bytes).expect("write corrupted");
    assert!(EntityStore::open(&dir).is_err());
    bytes[idx] ^= 0x10;
    std::fs::write(&mpath, &bytes).expect("restore");
    assert!(EntityStore::open(&dir).is_ok());
    // Append a byte to one shard: the manifest byte-length check fires.
    let spath = dir.join("shard-00001.mbs");
    let mut sbytes = std::fs::read(&spath).expect("shard bytes");
    sbytes.push(0);
    std::fs::write(&spath, &sbytes).expect("grow shard");
    assert!(EntityStore::open(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ivf_save_load_round_trips_and_rebuild_is_byte_identical() {
    let dir = scratch("ivf-io");
    let (store, _) = streamed_store(&dir, 260, 31, QuantMode::F16, 128);
    let store = Arc::new(store);
    let cfg = IvfConfig { nlist: 10, nprobe: 3, train_cap: 260, rounds: 4, seed: 3 };
    let built = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(2)).expect("build");
    let rebuilt = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(5)).expect("rebuild");
    assert_eq!(built.to_bytes(), rebuilt.to_bytes(), "rebuild is byte-identical");
    let path = dir.join(mb_store::IVF_FILE);
    built.save(&path).expect("save");
    let loaded = IvfIndex::load(&path, Arc::clone(&store)).expect("load");
    assert_eq!(loaded.to_bytes(), built.to_bytes());
    let mut rng = mb_common::Rng::seed_from_u64(17);
    let q: Vec<f64> = (0..store.dim()).map(|_| rng.gaussian()).collect();
    let a = built.top_k(&q, 20);
    let b = loaded.top_k(&q, 20);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
    // A flipped bit in the index file is rejected at load.
    let mut bytes = std::fs::read(&path).expect("index bytes");
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x02;
    std::fs::write(&path, &bytes).expect("write corrupted");
    assert!(IvfIndex::load(&path, store).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ivf_recall_at_64_meets_the_contract_on_the_hermetic_fixture() {
    // The acceptance fixture: clustered streamed world, f16 store,
    // recall@64 ≥ 0.95 against exact brute force over the same
    // quantized tables.
    let dir = scratch("recall");
    let (store, _) = streamed_store(&dir, 3000, 42, QuantMode::F16, 1024);
    let store = Arc::new(store);
    let exact = store.quantized_index().expect("exact index");
    let cfg = IvfConfig { nlist: 48, nprobe: 16, train_cap: 3000, rounds: 8, seed: 0 };
    let ivf = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(2)).expect("build");
    let mut rng = mb_common::Rng::seed_from_u64(7);
    let queries = 40;
    let k = 64;
    let mut hit = 0usize;
    let mut total = 0usize;
    for _ in 0..queries {
        // Queries near real entities (the serving distribution).
        let row = rng.below(store.len());
        let mut q = vec![0.0f64; store.dim()];
        store.dequant_row_into(row, &mut q);
        for x in q.iter_mut() {
            *x += 0.05 * rng.gaussian();
        }
        let truth: std::collections::BTreeSet<u32> =
            exact.top_k(&q, k).into_iter().map(|(id, _)| id.0).collect();
        let got = ivf.top_k(&q, k);
        total += truth.len();
        hit += got.iter().filter(|(id, _)| truth.contains(&id.0)).count();
    }
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.95, "recall@64 = {recall:.4} < 0.95");
    let _ = std::fs::remove_dir_all(&dir);
}
