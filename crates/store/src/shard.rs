//! One on-disk entity shard: checksummed sections, a fixed-width
//! record directory, and a varlen text payload read by byte offset.
//!
//! The file reuses the `mb-params v2` section+CRC machinery
//! (DESIGN.md §14):
//!
//! ```text
//! mb-store v1 4
//! section meta <len> <crc32>
//! <len payload bytes>
//! section dir <len> <crc32>
//! ...
//! section vecs <len> <crc32>
//! ...
//! section text <len> <crc32>
//! ...
//! ```
//!
//! Sections appear in exactly that order. `meta` is a small text block
//! (shard ordinal, base row, entity count, dim, quant mode). `dir` is
//! the fixed-width record directory: one 16-byte little-endian record
//! per entity (`text_off`, `title_len`, `desc_len`, reserved zero)
//! pointing into the `text` payload region. `vecs` holds the entity
//! vectors as the raw `QuantF16`/`QuantI8` table fields, so loading a
//! shard reassembles the quantized tables byte-for-byte without
//! re-quantizing. `text` is the concatenated UTF-8 titles and
//! descriptions, in row order.
//!
//! Integrity model — identical to `mb-params v2`: the magic line pins
//! the section count, each header pins the payload length, and each
//! CRC-32 covers `name + '\n' + payload`, so any truncation or
//! single-bit flip is detected. [`Shard::open`] is all-or-nothing: it
//! verifies every section CRC (streaming the large ones through a
//! bounded 64 KiB buffer) before returning a handle, and a failure
//! yields no partially-usable shard.
//!
//! Memory model: only the directory and the quantized vector tables
//! become resident (both fixed-width, bounded by the shard capacity).
//! The varlen `text` region is never materialized — titles and
//! descriptions are served on demand via `seek` + `read_exact` byte
//! ranges, mmap-style, so a million-entity store never holds its
//! description text in RAM.

use mb_common::storage::{atomic_write, Crc32};
use mb_common::{Error, Result};
use mb_tensor::quant::{f16_to_f64, quantize_i8, QuantF16, QuantI8};
use mb_tensor::{QuantMode, Tensor};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix shared by shard files and the store manifest.
pub const MAGIC: &str = "mb-store v1";

/// Streaming-verify chunk size: the largest buffer the load path ever
/// allocates for the varlen text region.
const VERIFY_CHUNK: usize = 64 * 1024;

/// Bytes per fixed-width directory record.
pub const DIR_RECORD_BYTES: usize = 16;

/// Upper bound on the `meta` section (it is a handful of short lines).
const META_MAX_BYTES: usize = 4096;

/// A query prepared once for repeated row scoring: the f64 form plus
/// its symmetric int8 quantization, so int8 shards can accumulate
/// exactly in integers per probed row instead of paying a per-element
/// float conversion — the same arithmetic the flat `score_all_i8`
/// kernel uses.
#[derive(Debug, Clone)]
pub struct PreparedQuery<'a> {
    pub(crate) query: &'a [f64],
    pub(crate) codes: Vec<i8>,
    pub(crate) scale: f64,
}

impl<'a> PreparedQuery<'a> {
    /// Quantize `query` once for scoring against any shard of either
    /// quant mode.
    pub fn new(query: &'a [f64]) -> PreparedQuery<'a> {
        let (codes, scale) = quantize_i8(query);
        PreparedQuery { query, codes, scale }
    }
}

/// One entity on its way into a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Entity title (unique across the store by convention).
    pub title: String,
    /// Full description text (addressable off-heap after writing).
    pub description: String,
    /// Dense embedding, `dim` wide.
    pub vector: Vec<f64>,
}

/// The quantized vector table of one shard.
#[derive(Debug, Clone)]
pub enum ShardTable {
    /// binary16 storage.
    F16(QuantF16),
    /// Per-row symmetric int8 storage.
    Int8(QuantI8),
}

/// One fixed-width directory record: byte-offset view into `text`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirEntry {
    text_off: u32,
    title_len: u32,
    desc_len: u32,
}

/// An open, fully verified shard. Vector tables and the directory are
/// resident; text is read on demand by byte offset.
#[derive(Debug)]
pub struct Shard {
    path: PathBuf,
    ordinal: usize,
    base: u32,
    dim: usize,
    dir: Vec<DirEntry>,
    table: ShardTable,
    text_pos: u64,
    text_len: usize,
    file: Mutex<File>,
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{context}: {e}"))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    for (d, s) in b.iter_mut().zip(bytes) {
        *d = *s;
    }
    u32::from_le_bytes(b)
}

fn le_u16(bytes: &[u8]) -> u16 {
    let mut b = [0u8; 2];
    for (d, s) in b.iter_mut().zip(bytes) {
        *d = *s;
    }
    u16::from_le_bytes(b)
}

fn le_f64(bytes: &[u8]) -> f64 {
    let mut b = [0u8; 8];
    for (d, s) in b.iter_mut().zip(bytes) {
        *d = *s;
    }
    f64::from_le_bytes(b)
}

/// Append one `section <name> <len> <crc>\n<payload>\n` frame.
fn append_section(out: &mut Vec<u8>, name: &str, payload: &[u8]) {
    let mut h = Crc32::new();
    h.update(name.as_bytes());
    h.update(b"\n");
    h.update(payload);
    out.extend_from_slice(
        format!("section {name} {} {:08x}\n", payload.len(), h.finish()).as_bytes(),
    );
    out.extend_from_slice(payload);
    out.push(b'\n');
}

/// Quantization-mode token used in `meta` and the manifest.
pub fn quant_token(mode: QuantMode) -> Result<&'static str> {
    match mode {
        QuantMode::F16 => Ok("f16"),
        QuantMode::Int8 => Ok("int8"),
        QuantMode::Exact => Err(Error::InvalidConfig(
            "the entity store persists quantized tables; use QuantMode::F16 or Int8".to_string(),
        )),
    }
}

/// Parse a quantization-mode token back.
pub fn parse_quant_token(token: &str) -> Result<QuantMode> {
    match token {
        "f16" => Ok(QuantMode::F16),
        "int8" => Ok(QuantMode::Int8),
        other => Err(Error::Checkpoint(format!("unknown quant mode {other:?}"))),
    }
}

/// Serialize one shard and write it atomically. Returns the file's
/// byte length (recorded by the manifest).
///
/// Peak memory is one shard's worth of bytes — the store builder calls
/// this once per `shard_capacity` entities, which is what bounds RAM
/// for a million-entity build.
///
/// # Errors
/// [`Error::InvalidConfig`] for an exact quant mode or empty shard;
/// [`Error::ShapeMismatch`] when a record's vector is not `dim` wide;
/// [`Error::Checkpoint`] when the text region outgrows the u32 offset
/// space; [`Error::Io`] on write failure.
pub fn write_shard(
    path: &Path,
    ordinal: usize,
    base: u32,
    dim: usize,
    quant: QuantMode,
    records: &[StoreRecord],
) -> Result<u64> {
    let quant_name = quant_token(quant)?;
    if records.is_empty() {
        return Err(Error::InvalidConfig("cannot write an empty shard".to_string()));
    }
    let n = records.len();
    let mut dir = Vec::with_capacity(n * DIR_RECORD_BYTES);
    let mut text: Vec<u8> = Vec::new();
    let mut vectors = Tensor::zeros(vec![n, dim]);
    for (row, rec) in records.iter().enumerate() {
        if rec.vector.len() != dim {
            return Err(Error::shape(
                "write_shard",
                format!("[{dim}] vector"),
                format!("[{}] vector at row {row}", rec.vector.len()),
            ));
        }
        let text_off = u32::try_from(text.len())
            .map_err(|_| Error::Checkpoint(format!("shard {ordinal}: text region > 4 GiB")))?;
        let title_len = u32::try_from(rec.title.len())
            .map_err(|_| Error::Checkpoint(format!("shard {ordinal}: title > 4 GiB")))?;
        let desc_len = u32::try_from(rec.description.len())
            .map_err(|_| Error::Checkpoint(format!("shard {ordinal}: description > 4 GiB")))?;
        text.extend_from_slice(rec.title.as_bytes());
        text.extend_from_slice(rec.description.as_bytes());
        if u32::try_from(text.len()).is_err() {
            return Err(Error::Checkpoint(format!("shard {ordinal}: text region > 4 GiB")));
        }
        push_u32(&mut dir, text_off);
        push_u32(&mut dir, title_len);
        push_u32(&mut dir, desc_len);
        push_u32(&mut dir, 0); // reserved
        vectors.row_mut(row).copy_from_slice(&rec.vector);
    }

    let mut vecs: Vec<u8> = Vec::new();
    match quant {
        QuantMode::F16 => {
            let table = QuantF16::from_tensor(&vectors);
            for &bits in table.bits() {
                vecs.extend_from_slice(&bits.to_le_bytes());
            }
        }
        QuantMode::Int8 => {
            let table = QuantI8::from_tensor(&vectors);
            for &scale in table.scales() {
                vecs.extend_from_slice(&scale.to_le_bytes());
            }
            for &code in table.codes() {
                vecs.push(code as u8);
            }
        }
        QuantMode::Exact => {
            // Already rejected by quant_token above; kept as a typed
            // error so this path can never abort a store build.
            return Err(Error::InvalidConfig("exact quant mode is not persistable".to_string()));
        }
    }

    let meta =
        format!("shard {ordinal}\nbase {base}\nentities {n}\ndim {dim}\nquant {quant_name}\n");
    let mut out = format!("{MAGIC} 4\n").into_bytes();
    append_section(&mut out, "meta", meta.as_bytes());
    append_section(&mut out, "dir", &dir);
    append_section(&mut out, "vecs", &vecs);
    append_section(&mut out, "text", &text);
    let bytes = out.len() as u64;
    atomic_write(path, &out)?;
    Ok(bytes)
}

/// Read one `\n`-terminated header line at `*pos` through a small
/// fixed buffer, advancing `*pos` past the newline.
fn read_line_at(file: &mut File, pos: &mut u64, what: &str) -> Result<String> {
    file.seek(SeekFrom::Start(*pos)).map_err(|e| io_err(what, e))?;
    let mut buf = [0u8; 256];
    let mut filled = 0usize;
    loop {
        let got = file.read(&mut buf[filled..]).map_err(|e| io_err(what, e))?;
        if got == 0 {
            break;
        }
        filled += got;
        if buf[..filled].contains(&b'\n') || filled == buf.len() {
            break;
        }
    }
    let Some(nl) = buf[..filled].iter().position(|&b| b == b'\n') else {
        return Err(Error::Checkpoint(format!("{what}: unterminated or overlong header line")));
    };
    let line = std::str::from_utf8(&buf[..nl])
        .map_err(|_| Error::Checkpoint(format!("{what}: header line is not UTF-8")))?
        .to_string();
    *pos += nl as u64 + 1;
    Ok(line)
}

/// Walk and CRC-verify every section frame of an `mb-store v1` file,
/// returning the frames. Verification streams each payload through a
/// bounded buffer; nothing section-sized is allocated here.
///
/// Shared by shards and the manifest: both carry the same framing.
pub(crate) fn verify_frames(file: &mut File, what: &str) -> Result<Vec<(String, usize, u64)>> {
    let file_len = file.metadata().map_err(|e| io_err(what, e)).map(|m| m.len())?;
    let mut pos = 0u64;
    let magic = read_line_at(file, &mut pos, what)?;
    let mut head = magic.split_whitespace();
    let magic_ok = head.next() == Some("mb-store") && head.next() == Some("v1");
    if !magic_ok {
        return Err(Error::Checkpoint(format!("{what}: bad magic line {magic:?}")));
    }
    let nsections: usize = head
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| Error::Checkpoint(format!("{what}: bad section count in {magic:?}")))?;
    if head.next().is_some() {
        return Err(Error::Checkpoint(format!("{what}: trailing tokens in magic line {magic:?}")));
    }
    let mut frames = Vec::with_capacity(nsections);
    let mut chunk = vec![0u8; VERIFY_CHUNK];
    for i in 0..nsections {
        let header = read_line_at(file, &mut pos, what)
            .map_err(|_| Error::Checkpoint(format!("{what}: truncated before section {i}")))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("section") {
            return Err(Error::Checkpoint(format!("{what}: bad section header {header:?}")));
        }
        let name = parts
            .next()
            .ok_or_else(|| {
                Error::Checkpoint(format!("{what}: section header {header:?} lacks name"))
            })?
            .to_string();
        let len: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::Checkpoint(format!("{what}: bad length in {header:?}")))?;
        // Strict canonical CRC form: exactly 8 lowercase hex digits, so
        // no bit flip of the stored CRC can parse to the same value.
        let crc_tok = parts
            .next()
            .filter(|t| {
                t.len() == 8 && t.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            })
            .ok_or_else(|| Error::Checkpoint(format!("{what}: bad crc in {header:?}")))?;
        let crc_expect = u32::from_str_radix(crc_tok, 16)
            .map_err(|e| Error::Checkpoint(format!("{what}: bad crc in {header:?}: {e}")))?;
        if parts.next().is_some() {
            return Err(Error::Checkpoint(format!("{what}: trailing tokens in {header:?}")));
        }
        let payload_pos = pos;
        if payload_pos + len as u64 + 1 > file_len {
            return Err(Error::Checkpoint(format!(
                "{what}: section {name}: payload truncated ({} of {len} bytes present)",
                file_len.saturating_sub(payload_pos)
            )));
        }
        let mut h = Crc32::new();
        h.update(name.as_bytes());
        h.update(b"\n");
        file.seek(SeekFrom::Start(payload_pos)).map_err(|e| io_err(what, e))?;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            file.read_exact(&mut chunk[..take]).map_err(|e| io_err(what, e))?;
            h.update(&chunk[..take]);
            remaining -= take;
        }
        let mut nl = [0u8; 1];
        file.read_exact(&mut nl).map_err(|e| io_err(what, e))?;
        if nl != [b'\n'] {
            return Err(Error::Checkpoint(format!(
                "{what}: section {name}: missing terminator after payload"
            )));
        }
        if h.finish() != crc_expect {
            return Err(Error::Checkpoint(format!(
                "{what}: section {name}: crc mismatch (stored {crc_expect:08x}, computed {:08x})",
                h.finish()
            )));
        }
        pos = payload_pos + len as u64 + 1;
        frames.push((name, len, payload_pos));
    }
    if pos != file_len {
        return Err(Error::Checkpoint(format!(
            "{what}: {} trailing bytes after final section",
            file_len - pos
        )));
    }
    Ok(frames)
}

/// Read one already-verified section payload into memory. Bounded by
/// the header-declared length, which callers size-check against their
/// fixed-width schema before calling.
pub(crate) fn read_section(file: &mut File, pos: u64, len: usize, what: &str) -> Result<Vec<u8>> {
    file.seek(SeekFrom::Start(pos)).map_err(|e| io_err(what, e))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf).map_err(|e| io_err(what, e))?;
    Ok(buf)
}

/// Parse a `key value` meta payload into pairs, in order.
pub(crate) fn parse_meta(payload: &[u8], what: &str) -> Result<Vec<(String, String)>> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| Error::Checkpoint(format!("{what}: meta is not UTF-8")))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let mut parts = line.splitn(2, ' ');
        let key = parts
            .next()
            .filter(|k| !k.is_empty())
            .ok_or_else(|| Error::Checkpoint(format!("{what}: bad meta line {line:?}")))?;
        let value = parts
            .next()
            .ok_or_else(|| Error::Checkpoint(format!("{what}: bad meta line {line:?}")))?;
        out.push((key.to_string(), value.to_string()));
    }
    Ok(out)
}

/// Look up a required meta key.
pub(crate) fn meta_value<'m>(
    meta: &'m [(String, String)],
    key: &str,
    what: &str,
) -> Result<&'m str> {
    meta.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| Error::Checkpoint(format!("{what}: meta lacks key {key:?}")))
}

/// Parse a required numeric meta key.
pub(crate) fn meta_number(meta: &[(String, String)], key: &str, what: &str) -> Result<u64> {
    meta_value(meta, key, what)?
        .parse()
        .map_err(|_| Error::Checkpoint(format!("{what}: meta key {key:?} is not a number")))
}

impl Shard {
    /// Open and fully verify a shard file. All-or-nothing: every
    /// section CRC is checked (large payloads streamed through a
    /// bounded buffer) before any state is returned, so a truncated or
    /// bit-flipped shard yields an error and nothing else.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on any framing, CRC, or schema problem;
    /// [`Error::Io`] when the file cannot be read.
    pub fn open(path: &Path) -> Result<Shard> {
        let what = path.to_string_lossy().into_owned();
        let mut file = File::open(path).map_err(|e| io_err(&what, e))?;
        let frames = verify_frames(&mut file, &what)?;
        let names: Vec<&str> = frames.iter().map(|(n, _, _)| n.as_str()).collect();
        if names != ["meta", "dir", "vecs", "text"] {
            return Err(Error::Checkpoint(format!(
                "{what}: expected sections [meta, dir, vecs, text], got {names:?}"
            )));
        }
        let frame = |i: usize| -> (usize, u64) {
            frames.get(i).map(|&(_, len, pos)| (len, pos)).unwrap_or((0, 0))
        };
        let (meta_len, meta_pos) = frame(0);
        if meta_len > META_MAX_BYTES {
            return Err(Error::Checkpoint(format!("{what}: meta section implausibly large")));
        }
        let meta_bytes = read_section(&mut file, meta_pos, meta_len, &what)?;
        let meta = parse_meta(&meta_bytes, &what)?;
        let ordinal = meta_number(&meta, "shard", &what)? as usize;
        let base_u64 = meta_number(&meta, "base", &what)?;
        let base = u32::try_from(base_u64)
            .map_err(|_| Error::Checkpoint(format!("{what}: base {base_u64} exceeds u32")))?;
        let n = meta_number(&meta, "entities", &what)? as usize;
        let dim = meta_number(&meta, "dim", &what)? as usize;
        if n == 0 || dim == 0 {
            return Err(Error::Checkpoint(format!("{what}: empty shard or zero dim")));
        }
        let quant = parse_quant_token(meta_value(&meta, "quant", &what)?)?;

        let (dir_len, dir_pos) = frame(1);
        if dir_len != n * DIR_RECORD_BYTES {
            return Err(Error::Checkpoint(format!(
                "{what}: dir section is {dir_len} bytes, want {} for {n} records",
                n * DIR_RECORD_BYTES
            )));
        }
        let (vecs_len, vecs_pos) = frame(2);
        let (text_len, text_pos) = frame(3);

        let dir_bytes = read_section(&mut file, dir_pos, dir_len, &what)?;
        let mut dir = Vec::with_capacity(n);
        let mut expect_off = 0u64;
        for (row, rec) in dir_bytes.chunks_exact(DIR_RECORD_BYTES).enumerate() {
            let (off_b, rest) = rec.split_at(4);
            let (title_b, rest) = rest.split_at(4);
            let (desc_b, reserved_b) = rest.split_at(4);
            let entry = DirEntry {
                text_off: le_u32(off_b),
                title_len: le_u32(title_b),
                desc_len: le_u32(desc_b),
            };
            if le_u32(reserved_b) != 0 {
                return Err(Error::Checkpoint(format!(
                    "{what}: dir row {row}: non-zero reserved field"
                )));
            }
            // Canonical layout: records tile the text region contiguously.
            if u64::from(entry.text_off) != expect_off {
                return Err(Error::Checkpoint(format!(
                    "{what}: dir row {row}: text offset {} breaks contiguity (want {expect_off})",
                    entry.text_off
                )));
            }
            expect_off += u64::from(entry.title_len) + u64::from(entry.desc_len);
            dir.push(entry);
        }
        if expect_off != text_len as u64 {
            return Err(Error::Checkpoint(format!(
                "{what}: directory covers {expect_off} text bytes, section has {text_len}"
            )));
        }

        let vecs_bytes = read_section(&mut file, vecs_pos, vecs_len, &what)?;
        let table = match quant {
            QuantMode::F16 => {
                if vecs_len != n * dim * 2 {
                    return Err(Error::Checkpoint(format!(
                        "{what}: vecs section is {vecs_len} bytes, want {} for f16 {n}x{dim}",
                        n * dim * 2
                    )));
                }
                let bits: Vec<u16> = vecs_bytes.chunks_exact(2).map(le_u16).collect();
                ShardTable::F16(QuantF16::from_raw(n, dim, bits)?)
            }
            QuantMode::Int8 => {
                if vecs_len != n * 8 + n * dim {
                    return Err(Error::Checkpoint(format!(
                        "{what}: vecs section is {vecs_len} bytes, want {} for int8 {n}x{dim}",
                        n * 8 + n * dim
                    )));
                }
                let (scale_bytes, code_bytes) = vecs_bytes.split_at(n * 8);
                let scales: Vec<f64> = scale_bytes.chunks_exact(8).map(le_f64).collect();
                let codes: Vec<i8> = code_bytes.iter().map(|&b| b as i8).collect();
                ShardTable::Int8(QuantI8::from_raw(n, dim, codes, scales)?)
            }
            QuantMode::Exact => {
                // parse_quant_token never yields Exact; a typed error
                // keeps the serving reload path panic-free regardless.
                return Err(Error::Checkpoint(format!("{what}: exact quant mode in shard header")));
            }
        };

        Ok(Shard {
            path: path.to_path_buf(),
            ordinal,
            base,
            dim,
            dir,
            table,
            text_pos,
            text_len,
            file: Mutex::new(file),
        })
    }

    /// Number of entities in this shard.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True if the shard holds no entities (never constructed; the
    /// writer rejects empty shards).
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Shard ordinal within its store.
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// Global row of this shard's first entity.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Quantization mode of the resident vector table.
    pub fn quant_mode(&self) -> QuantMode {
        match self.table {
            ShardTable::F16(_) => QuantMode::F16,
            ShardTable::Int8(_) => QuantMode::Int8,
        }
    }

    /// Bytes of the varlen text region left on disk (never resident).
    pub fn text_bytes(&self) -> usize {
        self.text_len
    }

    /// The resident quantized vector table.
    pub fn table(&self) -> &ShardTable {
        &self.table
    }

    /// Path this shard was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_text_range(&self, off: u64, len: usize, what: &str) -> Result<String> {
        let mut buf = vec![0u8; len];
        {
            let mut file = match self.file.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            file.seek(SeekFrom::Start(self.text_pos + off))
                .map_err(|e| io_err(&self.path.to_string_lossy(), e))?;
            file.read_exact(&mut buf).map_err(|e| io_err(&self.path.to_string_lossy(), e))?;
        }
        String::from_utf8(buf).map_err(|_| Error::Parse(format!("{what}: text is not UTF-8")))
    }

    fn entry(&self, row: usize) -> Result<DirEntry> {
        self.dir.get(row).copied().ok_or_else(|| {
            Error::NotFound(format!("shard {} row {row} of {}", self.ordinal, self.dir.len()))
        })
    }

    /// The title of the entity at `row`, read from disk by byte offset.
    ///
    /// # Errors
    /// [`Error::NotFound`] for an out-of-range row; [`Error::Io`] /
    /// [`Error::Parse`] when the byte range cannot be read or decoded.
    pub fn title(&self, row: usize) -> Result<String> {
        let e = self.entry(row)?;
        self.read_text_range(u64::from(e.text_off), e.title_len as usize, "title")
    }

    /// The description of the entity at `row`, read from disk by byte
    /// offset.
    ///
    /// # Errors
    /// Same as [`Shard::title`].
    pub fn description(&self, row: usize) -> Result<String> {
        let e = self.entry(row)?;
        self.read_text_range(
            u64::from(e.text_off) + u64::from(e.title_len),
            e.desc_len as usize,
            "description",
        )
    }

    /// Dot product of `query` against the dequantized vector at `row`.
    /// Sequential accumulation in row-element order — a pure function
    /// of (table, query), identical on every thread.
    ///
    /// One-off convenience; for repeated scoring against the same
    /// query, prepare it once ([`PreparedQuery::new`]) and use
    /// [`Shard::score_row_prepared`] — both paths compute the exact
    /// same bits.
    pub fn score_row(&self, row: usize, query: &[f64]) -> f64 {
        self.score_row_prepared(row, &PreparedQuery::new(query))
    }

    /// Dot product of a prepared query against the vector at `row`,
    /// using the same arithmetic as the flat `score_all_*` kernels:
    /// int8 rows accumulate exactly in integers against the
    /// once-quantized query codes; f16 rows take the sequential f64
    /// dot. Bit-identical to scoring the row through a flat
    /// `QuantizedIndex` over the same table.
    pub fn score_row_prepared(&self, row: usize, prep: &PreparedQuery<'_>) -> f64 {
        debug_assert_eq!(prep.query.len(), self.dim);
        let d = self.dim;
        match &self.table {
            ShardTable::F16(t) => {
                let row_bits = &t.bits()[row * d..(row + 1) * d];
                row_bits.iter().zip(prep.query).map(|(&h, &q)| f16_to_f64(h) * q).sum()
            }
            ShardTable::Int8(t) => {
                let codes = &t.codes()[row * d..(row + 1) * d];
                let acc: i64 =
                    codes.iter().zip(&prep.codes).map(|(&c, &q)| i64::from(c) * i64::from(q)).sum();
                acc as f64 * (t.scales()[row] * prep.scale)
            }
        }
    }

    /// Dequantize the vector at `row` into `out` (length `dim`).
    pub fn dequant_row_into(&self, row: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim);
        let d = self.dim;
        match &self.table {
            ShardTable::F16(t) => {
                for (dst, &bits) in out.iter_mut().zip(&t.bits()[row * d..(row + 1) * d]) {
                    *dst = f16_to_f64(bits);
                }
            }
            ShardTable::Int8(t) => {
                let scale = t.scales()[row];
                for (dst, &code) in out.iter_mut().zip(&t.codes()[row * d..(row + 1) * d]) {
                    *dst = f64::from(code) * scale;
                }
            }
        }
    }
}
