//! `mb-store`: million-entity scale storage and retrieval.
//!
//! The in-memory [`mb_kb::KnowledgeBase`] and
//! [`mb_encoders::retrieval::DenseIndex`] top out where RAM does. This
//! crate is the tier above them:
//!
//! - [`shard`] — an on-disk, checksummed shard format
//!   (`mb-store v1`): a fixed-width record directory and quantized
//!   vector table are loaded eagerly; the variable-length text region
//!   is CRC-verified **streamed** at open and then read per-record via
//!   seek, so a shard's text is never materialized in memory.
//! - [`store`] — [`EntityStore`]: a manifest-led directory of shards
//!   with contiguous global ids, built by the streaming
//!   [`StoreBuilder`] in bounded RAM (one shard's records at a time).
//! - [`ivf`] — [`IvfIndex`]: deterministic seeded-k-means IVF
//!   retrieval over the store's quantized tables, implementing the
//!   same [`CandidateSource`] trait as the exact indexes. Build and
//!   search are bit-identical across runs and `mb-par` worker counts.
//!
//! Corruption handling is all-or-nothing, inherited from the
//! `mb-params v2` section framing: any flipped bit or truncation in a
//! manifest, shard, or index file fails the open with
//! [`mb_common::Error::Checkpoint`] rather than serving partial data.

pub mod ivf;
pub mod shard;
pub mod store;

pub use ivf::{IvfConfig, IvfIndex, IVF_FILE};
pub use shard::{PreparedQuery, Shard, ShardTable, StoreRecord};
pub use store::{EntityStore, StoreBuilder, StoreConfig, MANIFEST};

pub use mb_encoders::retrieval::CandidateSource;
pub use mb_par::Threads;
