//! The sharded entity store: a directory of shard files plus a
//! checksummed `MANIFEST` naming them.
//!
//! ```text
//! <dir>/MANIFEST          mb-store v1 framing, one `manifest` section
//! <dir>/shard-00000.mbs   entities [0, capacity)
//! <dir>/shard-00001.mbs   entities [capacity, 2*capacity)
//! ...
//! ```
//!
//! Entity ids are global and contiguous: the entity with id `g` lives
//! in shard `g / shard_capacity` at row `g % shard_capacity` (the
//! manifest records every shard's base and count, and open-time
//! validation enforces contiguity). [`StoreBuilder`] consumes a record
//! stream and rolls a new shard every `shard_capacity` entities, so
//! peak RAM during a build is one shard regardless of store size.
//! [`EntityStore::open`] verifies the manifest and every shard
//! (section CRCs, schema, contiguity) before returning — all or
//! nothing, like the `mb-params v2` loader it descends from.

use crate::shard::{
    self, parse_quant_token, quant_token, read_section, verify_frames, PreparedQuery, Shard,
    ShardTable, StoreRecord, MAGIC,
};
use mb_common::storage::{atomic_write, Crc32};
use mb_common::{Error, Result};
use mb_encoders::retrieval::QuantizedIndex;
use mb_kb::EntityId;
use mb_tensor::quant::{QuantF16, QuantI8};
use mb_tensor::QuantMode;
use std::fs::File;
use std::path::{Path, PathBuf};

/// Manifest file name inside a store directory.
pub const MANIFEST: &str = "MANIFEST";

/// Upper bound on the manifest section (one short line per shard).
const MANIFEST_MAX_BYTES: usize = 16 * 1024 * 1024;

/// Build-time parameters of a sharded store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Entities per shard; the builder's RAM bound.
    pub shard_capacity: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// On-disk vector quantization ([`QuantMode::Exact`] is rejected —
    /// the store persists quantized tables).
    pub quant: QuantMode,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { shard_capacity: 65_536, dim: 32, quant: QuantMode::Int8 }
    }
}

/// Streaming store writer: push records in id order, shards roll
/// automatically, `finish` seals the manifest and reopens the store.
pub struct StoreBuilder {
    dir: PathBuf,
    cfg: StoreConfig,
    pending: Vec<StoreRecord>,
    shards: Vec<(String, u32, usize, u64)>, // file, base, entities, bytes
    total: usize,
}

/// File name of shard `ordinal`.
fn shard_file_name(ordinal: usize) -> String {
    format!("shard-{ordinal:05}.mbs")
}

impl StoreBuilder {
    /// Start building a store in `dir` (created if absent; an existing
    /// `MANIFEST` there is rejected rather than silently overwritten).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for a zero capacity/dim, an exact quant
    /// mode, or a directory that already holds a store;
    /// [`Error::Io`] when the directory cannot be created.
    pub fn create(dir: &Path, cfg: StoreConfig) -> Result<StoreBuilder> {
        if cfg.shard_capacity == 0 || cfg.dim == 0 {
            return Err(Error::InvalidConfig(
                "store shard_capacity and dim must be positive".to_string(),
            ));
        }
        quant_token(cfg.quant)?;
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("create {}: {e}", dir.display())))?;
        if dir.join(MANIFEST).exists() {
            return Err(Error::InvalidConfig(format!(
                "{} already holds a store manifest",
                dir.display()
            )));
        }
        Ok(StoreBuilder {
            dir: dir.to_path_buf(),
            cfg,
            pending: Vec::with_capacity(cfg.shard_capacity),
            shards: Vec::new(),
            total: 0,
        })
    }

    /// Entities accepted so far.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True before the first record arrives.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Append the next entity (global id = arrival order). Flushes a
    /// full shard to disk as a side effect, keeping at most
    /// `shard_capacity` records in memory.
    ///
    /// # Errors
    /// Shape/offset/write errors from [`shard::write_shard`].
    pub fn push(&mut self, record: StoreRecord) -> Result<()> {
        if record.vector.len() != self.cfg.dim {
            return Err(Error::shape(
                "StoreBuilder::push",
                format!("[{}] vector", self.cfg.dim),
                format!("[{}] vector", record.vector.len()),
            ));
        }
        self.pending.push(record);
        self.total += 1;
        if self.pending.len() == self.cfg.shard_capacity {
            self.flush_shard()?;
        }
        Ok(())
    }

    fn flush_shard(&mut self) -> Result<()> {
        let ordinal = self.shards.len();
        let base_usize = self.total - self.pending.len();
        let base = u32::try_from(base_usize)
            .map_err(|_| Error::InvalidConfig("store exceeds u32 entity ids".to_string()))?;
        let file = shard_file_name(ordinal);
        let count = self.pending.len();
        let bytes = shard::write_shard(
            &self.dir.join(&file),
            ordinal,
            base,
            self.cfg.dim,
            self.cfg.quant,
            &self.pending,
        )?;
        self.shards.push((file, base, count, bytes));
        self.pending.clear();
        Ok(())
    }

    /// Flush the final (possibly short) shard, write the manifest
    /// atomically, and reopen the finished store through the verifying
    /// loader.
    ///
    /// # Errors
    /// [`Error::Empty`] when no records were pushed; write and
    /// verification errors otherwise.
    pub fn finish(mut self) -> Result<EntityStore> {
        if !self.pending.is_empty() {
            self.flush_shard()?;
        }
        if self.shards.is_empty() {
            return Err(Error::Empty("entity store"));
        }
        let quant_name = quant_token(self.cfg.quant)?;
        let mut payload = format!(
            "entities {}\ndim {}\nquant {quant_name}\ncapacity {}\nshards {}\n",
            self.total,
            self.cfg.dim,
            self.cfg.shard_capacity,
            self.shards.len()
        );
        for (ordinal, (file, base, count, bytes)) in self.shards.iter().enumerate() {
            payload.push_str(&format!("shard {ordinal} {file} {base} {count} {bytes}\n"));
        }
        let mut h = Crc32::new();
        h.update(b"manifest\n");
        h.update(payload.as_bytes());
        let mut out = format!("{MAGIC} 1\n").into_bytes();
        out.extend_from_slice(
            format!("section manifest {} {:08x}\n", payload.len(), h.finish()).as_bytes(),
        );
        out.extend_from_slice(payload.as_bytes());
        out.push(b'\n');
        atomic_write(&self.dir.join(MANIFEST), &out)?;
        EntityStore::open(&self.dir)
    }
}

/// An open, fully verified sharded entity store.
#[derive(Debug)]
pub struct EntityStore {
    dir: PathBuf,
    dim: usize,
    quant: QuantMode,
    capacity: usize,
    shards: Vec<Shard>,
    total: usize,
}

impl EntityStore {
    /// Open the store in `dir`, verifying the manifest and every shard
    /// (framing, CRCs, schema, id contiguity). All-or-nothing.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on any corruption or inconsistency;
    /// [`Error::Io`] when files cannot be read.
    pub fn open(dir: &Path) -> Result<EntityStore> {
        let manifest_path = dir.join(MANIFEST);
        let what = manifest_path.to_string_lossy().into_owned();
        let mut file = File::open(&manifest_path)
            .map_err(|e| Error::Io(format!("{what}: {e} (not a store directory?)")))?;
        let frames = verify_frames(&mut file, &what)?;
        let [(name, len, pos)] = frames.as_slice() else {
            return Err(Error::Checkpoint(format!(
                "{what}: expected exactly one manifest section, got {}",
                frames.len()
            )));
        };
        if name != "manifest" {
            return Err(Error::Checkpoint(format!("{what}: unexpected section {name:?}")));
        }
        if *len > MANIFEST_MAX_BYTES {
            return Err(Error::Checkpoint(format!("{what}: manifest implausibly large")));
        }
        let payload = read_section(&mut file, *pos, *len, &what)?;
        let meta = shard::parse_meta(&payload, &what)?;
        let total = shard::meta_number(&meta, "entities", &what)? as usize;
        let dim = shard::meta_number(&meta, "dim", &what)? as usize;
        let quant = parse_quant_token(shard::meta_value(&meta, "quant", &what)?)?;
        let capacity = shard::meta_number(&meta, "capacity", &what)? as usize;
        let nshards = shard::meta_number(&meta, "shards", &what)? as usize;
        if capacity == 0 || dim == 0 {
            return Err(Error::Checkpoint(format!("{what}: zero capacity or dim")));
        }
        let shard_lines: Vec<&(String, String)> =
            meta.iter().filter(|(k, _)| k == "shard").collect();
        if shard_lines.len() != nshards {
            return Err(Error::Checkpoint(format!(
                "{what}: manifest declares {nshards} shards but lists {}",
                shard_lines.len()
            )));
        }
        let mut shards = Vec::with_capacity(nshards);
        let mut next_base = 0u64;
        let mut counted = 0usize;
        for (ordinal, (_, line)) in shard_lines.iter().enumerate() {
            let mut parts = line.split_whitespace();
            let decl_ordinal: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: bad shard line {line:?}")))?;
            let file_name = parts
                .next()
                .ok_or_else(|| Error::Checkpoint(format!("{what}: bad shard line {line:?}")))?;
            let base: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: bad shard line {line:?}")))?;
            let count: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: bad shard line {line:?}")))?;
            let bytes: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: bad shard line {line:?}")))?;
            if parts.next().is_some() {
                return Err(Error::Checkpoint(format!("{what}: trailing tokens in {line:?}")));
            }
            if decl_ordinal != ordinal {
                return Err(Error::Checkpoint(format!(
                    "{what}: shard line {ordinal} declares ordinal {decl_ordinal}"
                )));
            }
            if base != next_base {
                return Err(Error::Checkpoint(format!(
                    "{what}: shard {ordinal} base {base} breaks contiguity (want {next_base})"
                )));
            }
            let full = ordinal + 1 < nshards;
            if (full && count != capacity) || count == 0 || count > capacity {
                return Err(Error::Checkpoint(format!(
                    "{what}: shard {ordinal} holds {count} entities (capacity {capacity})"
                )));
            }
            let path = dir.join(file_name);
            let on_disk = std::fs::metadata(&path)
                .map_err(|e| Error::Io(format!("{}: {e}", path.display())))?
                .len();
            if on_disk != bytes {
                return Err(Error::Checkpoint(format!(
                    "{what}: shard {ordinal} is {on_disk} bytes on disk, manifest says {bytes}"
                )));
            }
            let sh = Shard::open(&path)?;
            if sh.ordinal() != ordinal
                || u64::from(sh.base()) != base
                || sh.len() != count
                || sh.dim() != dim
                || sh.quant_mode() != quant
            {
                return Err(Error::Checkpoint(format!(
                    "{what}: shard {ordinal} metadata disagrees with its manifest entry"
                )));
            }
            next_base = base + count as u64;
            counted += count;
            shards.push(sh);
        }
        if counted != total {
            return Err(Error::Checkpoint(format!(
                "{what}: shards hold {counted} entities, manifest says {total}"
            )));
        }
        Ok(EntityStore { dir: dir.to_path_buf(), dim, quant, capacity, shards, total })
    }

    /// Total entities across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True for a store with no entities (never constructed; the
    /// builder rejects empty stores).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// On-disk quantization mode.
    pub fn quant_mode(&self) -> QuantMode {
        self.quant
    }

    /// Entities per full shard.
    pub fn shard_capacity(&self) -> usize {
        self.capacity
    }

    /// The verified shards, in id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The directory this store was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Locate a global row: `(shard index, row within shard)`.
    pub fn locate(&self, global_row: usize) -> Option<(usize, usize)> {
        if global_row >= self.total {
            return None;
        }
        Some((global_row / self.capacity, global_row % self.capacity))
    }

    /// Title of the entity with global id `id`, read from disk.
    ///
    /// # Errors
    /// [`Error::NotFound`] for an id outside the store; I/O and decode
    /// errors from the shard read.
    pub fn title(&self, id: EntityId) -> Result<String> {
        let (s, row) = self
            .locate(id.0 as usize)
            .ok_or_else(|| Error::NotFound(format!("entity {} of {}", id.0, self.total)))?;
        self.shards.get(s).ok_or_else(|| Error::NotFound(format!("shard {s}")))?.title(row)
    }

    /// Description of the entity with global id `id`, read from disk.
    ///
    /// # Errors
    /// Same as [`EntityStore::title`].
    pub fn description(&self, id: EntityId) -> Result<String> {
        let (s, row) = self
            .locate(id.0 as usize)
            .ok_or_else(|| Error::NotFound(format!("entity {} of {}", id.0, self.total)))?;
        self.shards.get(s).ok_or_else(|| Error::NotFound(format!("shard {s}")))?.description(row)
    }

    /// Dot product of `query` against the dequantized vector at
    /// `global_row`. Pure and thread-independent (DESIGN.md §14).
    pub fn score_row(&self, global_row: usize, query: &[f64]) -> f64 {
        let (s, row) = (global_row / self.capacity, global_row % self.capacity);
        self.shards[s].score_row(row, query)
    }

    /// Dot product of a once-prepared query ([`PreparedQuery::new`])
    /// against the vector at `global_row` — the hot path for probing
    /// many rows with the same query; bit-identical to
    /// [`EntityStore::score_row`].
    pub fn score_row_prepared(&self, global_row: usize, prep: &PreparedQuery<'_>) -> f64 {
        let (s, row) = (global_row / self.capacity, global_row % self.capacity);
        self.shards[s].score_row_prepared(row, prep)
    }

    /// Dequantize the vector at `global_row` into `out`.
    pub fn dequant_row_into(&self, global_row: usize, out: &mut [f64]) {
        let (s, row) = (global_row / self.capacity, global_row % self.capacity);
        self.shards[s].dequant_row_into(row, out);
    }

    /// Assemble one flat [`QuantizedIndex`] over the whole store by
    /// concatenating the per-shard tables **byte-for-byte** — the PR 6
    /// residual: quantization happened once at store-build time, so
    /// serve start-up (and every reload) moves raw table rows instead
    /// of re-quantizing embeddings.
    ///
    /// # Errors
    /// Shape errors from the raw-parts constructors (only reachable if
    /// a shard lied about its geometry, which open-time checks reject).
    pub fn quantized_index(&self) -> Result<QuantizedIndex> {
        let ids: Vec<EntityId> = (0..u32::try_from(self.total)
            .map_err(|_| Error::InvalidConfig("store exceeds u32 entity ids".to_string()))?)
            .map(EntityId)
            .collect();
        match self.quant {
            QuantMode::F16 => {
                let mut bits: Vec<u16> = Vec::with_capacity(self.total * self.dim);
                for sh in &self.shards {
                    match sh.table() {
                        ShardTable::F16(t) => bits.extend_from_slice(t.bits()),
                        ShardTable::Int8(_) => {
                            return Err(Error::Checkpoint("mixed shard quant modes".to_string()))
                        }
                    }
                }
                QuantizedIndex::from_f16(QuantF16::from_raw(self.total, self.dim, bits)?, ids)
            }
            QuantMode::Int8 => {
                let mut codes: Vec<i8> = Vec::with_capacity(self.total * self.dim);
                let mut scales: Vec<f64> = Vec::with_capacity(self.total);
                for sh in &self.shards {
                    match sh.table() {
                        ShardTable::Int8(t) => {
                            codes.extend_from_slice(t.codes());
                            scales.extend_from_slice(t.scales());
                        }
                        ShardTable::F16(_) => {
                            return Err(Error::Checkpoint("mixed shard quant modes".to_string()))
                        }
                    }
                }
                QuantizedIndex::from_i8(
                    QuantI8::from_raw(self.total, self.dim, codes, scales)?,
                    ids,
                )
            }
            QuantMode::Exact => {
                Err(Error::InvalidConfig("store never holds exact tables".to_string()))
            }
        }
    }
}
