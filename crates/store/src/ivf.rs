//! Deterministic IVF (inverted-file) retrieval over an
//! [`EntityStore`].
//!
//! The index is a seeded k-means partition of the store's vectors:
//! `nlist` centroids plus one inverted list of row ids per centroid.
//! A query scores all centroids, probes the `nprobe` best lists, and
//! scores only the rows they hold against the store's quantized
//! tables — the same arithmetic brute force would use, on a fraction
//! of the rows.
//!
//! # Determinism contract (DESIGN.md §14)
//!
//! Build and search are **bit-identical across runs and worker
//! counts**:
//!
//! - training rows are a fixed stride of the store (no sampling RNG);
//!   the only randomness is the seeded centroid init, drawn from
//!   `Rng::seed_from_u64(cfg.seed)` in one serial pass;
//! - Lloyd assignment fans out over fixed row chunks via
//!   `par_map_range` (pure per-chunk work, results concatenated in
//!   chunk order); centroid updates run serially in row order; an
//!   empty cluster keeps its previous centroid;
//! - ties (assignment and search) break toward the lowest index, so
//!   float equality never consults arrival order;
//! - search is serial per query; batches fan out per query.
//!
//! `save`/`load` round-trip the exact `f64` bit patterns, so a loaded
//! index answers queries identically to the one that was built.

use crate::shard::{self, read_section, verify_frames, MAGIC};
use crate::store::EntityStore;
use mb_common::storage::{atomic_write, Crc32};
use mb_common::util::top_k_desc;
use mb_common::{Error, Result, Rng};
use mb_encoders::retrieval::CandidateSource;
use mb_kb::EntityId;
use mb_par::{par_map_range, Threads};
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

/// Canonical index file name inside a store directory.
pub const IVF_FILE: &str = "IVF";

/// Rows scored per parallel work item during build.
const ASSIGN_CHUNK: usize = 4096;

/// Build-time parameters of an IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of k-means clusters (inverted lists).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// Cap on rows used to train centroids (strided subsample).
    pub train_cap: usize,
    /// Lloyd iterations.
    pub rounds: usize,
    /// Centroid-init seed.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 64, nprobe: 8, train_cap: 65_536, rounds: 8, seed: 0 }
    }
}

/// A built (or loaded) IVF index bound to its store.
pub struct IvfIndex {
    store: Arc<EntityStore>,
    dim: usize,
    nprobe: usize,
    /// `nlist * dim`, row-major.
    centroids: Vec<f64>,
    /// Row ids per centroid, each list ascending.
    lists: Vec<Vec<u32>>,
}

/// Best centroid for `v`: max inner product, lowest index on ties.
fn best_centroid(v: &[f64], centroids: &[f64], nlist: usize, dim: usize) -> u32 {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for c in 0..nlist {
        let base = c * dim;
        let mut s = 0.0;
        for (j, &x) in v.iter().enumerate() {
            s += centroids[base + j] * x;
        }
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    u32::try_from(best).unwrap_or(u32::MAX)
}

/// Assign every row of `vectors` (a flat `n * dim` slice) to its best
/// centroid, fanning out over fixed chunks. Chunk results concatenate
/// in chunk order, so the output is independent of `threads`.
fn assign_flat(
    vectors: &[f64],
    dim: usize,
    centroids: &[f64],
    nlist: usize,
    threads: Threads,
) -> Vec<u32> {
    let n = vectors.len() / dim;
    let chunks = n.div_ceil(ASSIGN_CHUNK).max(1);
    let parts = par_map_range(threads, chunks, |c| {
        let lo = c * ASSIGN_CHUNK;
        let hi = (lo + ASSIGN_CHUNK).min(n);
        let mut out = Vec::with_capacity(hi.saturating_sub(lo));
        for row in lo..hi {
            out.push(best_centroid(&vectors[row * dim..(row + 1) * dim], centroids, nlist, dim));
        }
        out
    });
    let mut assign = Vec::with_capacity(n);
    for p in parts {
        assign.extend_from_slice(&p);
    }
    assign
}

impl IvfIndex {
    /// Train centroids on a strided subsample and assign every store
    /// row to its nearest centroid.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when `nlist` is zero or exceeds the
    /// store size, or `rounds`/`train_cap` is zero.
    pub fn build(store: Arc<EntityStore>, cfg: IvfConfig, threads: Threads) -> Result<IvfIndex> {
        let n = store.len();
        let dim = store.dim();
        if cfg.nlist == 0 || cfg.rounds == 0 || cfg.train_cap == 0 {
            return Err(Error::InvalidConfig(
                "ivf nlist, rounds and train_cap must be positive".to_string(),
            ));
        }
        if cfg.nlist > n {
            return Err(Error::InvalidConfig(format!(
                "ivf nlist {} exceeds store size {n}",
                cfg.nlist
            )));
        }
        // Training set: every `stride`-th row, dequantized once. The
        // stride is a function of (n, train_cap) only, so the sample —
        // and everything downstream — is reproducible.
        let stride = n.div_ceil(cfg.train_cap).max(1);
        let sample_rows: Vec<usize> = (0..n).step_by(stride).collect();
        let sn = sample_rows.len();
        if cfg.nlist > sn {
            return Err(Error::InvalidConfig(format!(
                "ivf nlist {} exceeds training sample {sn}; raise train_cap",
                cfg.nlist
            )));
        }
        let mut sample = vec![0.0f64; sn * dim];
        for (si, &row) in sample_rows.iter().enumerate() {
            store.dequant_row_into(row, &mut sample[si * dim..(si + 1) * dim]);
        }
        // Seeded init: distinct sample rows, one serial draw.
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let picks = rng.sample_indices(sn, cfg.nlist);
        let mut centroids = vec![0.0f64; cfg.nlist * dim];
        for (c, &si) in picks.iter().enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&sample[si * dim..(si + 1) * dim]);
        }
        // Lloyd: parallel assignment (chunk order), serial update.
        for _round in 0..cfg.rounds {
            let assign = assign_flat(&sample, dim, &centroids, cfg.nlist, threads);
            let mut sums = vec![0.0f64; cfg.nlist * dim];
            let mut counts = vec![0usize; cfg.nlist];
            for (si, &c) in assign.iter().enumerate() {
                let c = c as usize;
                counts[c] += 1;
                let base = c * dim;
                for (j, &v) in sample[si * dim..(si + 1) * dim].iter().enumerate() {
                    sums[base + j] += v;
                }
            }
            for c in 0..cfg.nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for j in 0..dim {
                        centroids[c * dim + j] = sums[c * dim + j] * inv;
                    }
                }
                // Empty cluster: keep the previous centroid verbatim.
            }
        }
        // Final assignment of every row, shard by shard in bounded RAM.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); cfg.nlist];
        let mut flat = Vec::new();
        let mut base_row = 0usize;
        for sh in store.shards() {
            let rows = sh.len();
            flat.clear();
            flat.resize(rows * dim, 0.0);
            for r in 0..rows {
                sh.dequant_row_into(r, &mut flat[r * dim..(r + 1) * dim]);
            }
            let assign = assign_flat(&flat, dim, &centroids, cfg.nlist, threads);
            for (r, &c) in assign.iter().enumerate() {
                let row = u32::try_from(base_row + r)
                    .map_err(|_| Error::InvalidConfig("store exceeds u32 rows".to_string()))?;
                lists[c as usize].push(row);
            }
            base_row += rows;
        }
        Ok(IvfIndex { store, dim, nprobe: cfg.nprobe.clamp(1, cfg.nlist), centroids, lists })
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Re-bound probe width (clamped to `[1, nlist]`); returns the
    /// effective value. Lets benchmarks sweep recall-vs-speed without
    /// rebuilding.
    pub fn set_nprobe(&mut self, nprobe: usize) -> usize {
        self.nprobe = nprobe.clamp(1, self.nlist());
        self.nprobe
    }

    /// The store this index retrieves from.
    pub fn store(&self) -> &Arc<EntityStore> {
        &self.store
    }

    /// Serialize to `mb-store v1` framing: sections `meta`,
    /// `centroids` (f64 bit patterns, LE), `lists` (per-list length
    /// prefix then row ids, u32 LE).
    ///
    /// # Errors
    /// [`Error::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// The serialized index, byte-for-byte what [`IvfIndex::save`]
    /// writes (exposed so tests can assert bit-identical rebuilds).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nlist = self.lists.len();
        let meta = format!(
            "entities {}\ndim {}\nnlist {nlist}\nnprobe {}\n",
            self.store.len(),
            self.dim,
            self.nprobe
        );
        let mut centroids = Vec::with_capacity(self.centroids.len() * 8);
        for &v in &self.centroids {
            centroids.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut lists = Vec::new();
        for list in &self.lists {
            let len = u32::try_from(list.len()).unwrap_or(u32::MAX);
            lists.extend_from_slice(&len.to_le_bytes());
            for &row in list {
                lists.extend_from_slice(&row.to_le_bytes());
            }
        }
        let mut out = format!("{MAGIC} 3\n").into_bytes();
        for (name, payload) in
            [("meta", meta.as_bytes()), ("centroids", &centroids), ("lists", &lists)]
        {
            let mut h = Crc32::new();
            h.update(name.as_bytes());
            h.update(b"\n");
            h.update(payload);
            out.extend_from_slice(
                format!("section {name} {} {:08x}\n", payload.len(), h.finish()).as_bytes(),
            );
            out.extend_from_slice(payload);
            out.push(b'\n');
        }
        out
    }

    /// Load a saved index and bind it to `store`, verifying framing,
    /// CRCs, and that the geometry matches the store.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on corruption or a store mismatch;
    /// [`Error::Io`] when the file cannot be read.
    pub fn load(path: &Path, store: Arc<EntityStore>) -> Result<IvfIndex> {
        let what = path.to_string_lossy().into_owned();
        let mut file = File::open(path).map_err(|e| Error::Io(format!("{what}: {e}")))?;
        let frames = verify_frames(&mut file, &what)?;
        let names: Vec<&str> = frames.iter().map(|(n, _, _)| n.as_str()).collect();
        if names != ["meta", "centroids", "lists"] {
            return Err(Error::Checkpoint(format!(
                "{what}: expected sections [meta, centroids, lists], got {names:?}"
            )));
        }
        let meta_bytes = read_section(&mut file, frames[0].2, frames[0].1, &what)?;
        let meta = shard::parse_meta(&meta_bytes, &what)?;
        let entities = shard::meta_number(&meta, "entities", &what)? as usize;
        let dim = shard::meta_number(&meta, "dim", &what)? as usize;
        let nlist = shard::meta_number(&meta, "nlist", &what)? as usize;
        let nprobe = shard::meta_number(&meta, "nprobe", &what)? as usize;
        if entities != store.len() || dim != store.dim() {
            return Err(Error::Checkpoint(format!(
                "{what}: index built for {entities} entities dim {dim}, store has {} dim {}",
                store.len(),
                store.dim()
            )));
        }
        if nlist == 0 || nprobe == 0 || nprobe > nlist {
            return Err(Error::Checkpoint(format!(
                "{what}: inconsistent nlist {nlist} / nprobe {nprobe}"
            )));
        }
        let cbytes = read_section(&mut file, frames[1].2, frames[1].1, &what)?;
        if cbytes.len() != nlist * dim * 8 {
            return Err(Error::Checkpoint(format!(
                "{what}: centroids section is {} bytes, want {}",
                cbytes.len(),
                nlist * dim * 8
            )));
        }
        let mut centroids = Vec::with_capacity(nlist * dim);
        for chunk in cbytes.chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            centroids.push(f64::from_bits(u64::from_le_bytes(b)));
        }
        let lbytes = read_section(&mut file, frames[2].2, frames[2].1, &what)?;
        let mut lists = Vec::with_capacity(nlist);
        let mut pos = 0usize;
        let mut covered = 0usize;
        let take_u32 = |bytes: &[u8], pos: &mut usize| -> Result<u32> {
            let end = pos
                .checked_add(4)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: lists section truncated")))?;
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[*pos..end]);
            *pos = end;
            Ok(u32::from_le_bytes(b))
        };
        for _ in 0..nlist {
            let len = take_u32(&lbytes, &mut pos)? as usize;
            let mut list = Vec::with_capacity(len);
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let row = take_u32(&lbytes, &mut pos)?;
                if (row as usize) >= entities || prev.is_some_and(|p| p >= row) {
                    return Err(Error::Checkpoint(format!(
                        "{what}: inverted list rows out of range or not ascending"
                    )));
                }
                prev = Some(row);
                list.push(row);
            }
            lists.push(list);
            covered += len;
        }
        if pos != lbytes.len() {
            return Err(Error::Checkpoint(format!("{what}: trailing bytes in lists section")));
        }
        if covered != entities {
            return Err(Error::Checkpoint(format!(
                "{what}: inverted lists cover {covered} rows, store has {entities}"
            )));
        }
        Ok(IvfIndex { store, dim, nprobe, centroids, lists })
    }
}

impl std::fmt::Debug for IvfIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvfIndex")
            .field("entities", &self.store.len())
            .field("dim", &self.dim)
            .field("nlist", &self.lists.len())
            .field("nprobe", &self.nprobe)
            .finish()
    }
}

impl CandidateSource for IvfIndex {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn max_id(&self) -> Option<EntityId> {
        let n = self.store.len();
        if n == 0 {
            None
        } else {
            u32::try_from(n - 1).ok().map(EntityId)
        }
    }

    fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        let nlist = self.lists.len();
        let cscores: Vec<f64> = (0..nlist)
            .map(|c| {
                let base = c * self.dim;
                query.iter().enumerate().map(|(j, &q)| self.centroids[base + j] * q).sum()
            })
            .collect();
        let probes = top_k_desc(&cscores, self.nprobe);
        // Quantize the query once; each probed row then costs one
        // integer dot (int8 stores), matching the flat-scan kernel's
        // arithmetic bit for bit.
        let prep = crate::shard::PreparedQuery::new(query);
        let mut rows: Vec<u32> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for c in probes {
            for &row in &self.lists[c] {
                rows.push(row);
                scores.push(self.store.score_row_prepared(row as usize, &prep));
            }
        }
        top_k_desc(&scores, k).into_iter().map(|i| (EntityId(rows[i]), scores[i])).collect()
    }
}
