//! Deterministic IVF (inverted-file) retrieval over an
//! [`EntityStore`].
//!
//! The index is a seeded k-means partition of the store's vectors:
//! `nlist` centroids plus one inverted list of row ids per centroid.
//! A query scores all centroids, probes the `nprobe` best lists, and
//! scores only the rows they hold against the store's quantized
//! tables — the same arithmetic brute force would use, on a fraction
//! of the rows.
//!
//! # Determinism contract (DESIGN.md §14)
//!
//! Build and search are **bit-identical across runs and worker
//! counts**:
//!
//! - training rows are a fixed stride of the store (no sampling RNG);
//!   the only randomness is the seeded centroid init, drawn from
//!   `Rng::seed_from_u64(cfg.seed)` in one serial pass;
//! - Lloyd assignment fans out over fixed row chunks via
//!   `par_map_range` (pure per-chunk work, results concatenated in
//!   chunk order); centroid updates run serially in row order; an
//!   empty cluster keeps its previous centroid;
//! - ties (assignment and search) break toward the lowest index, so
//!   float equality never consults arrival order;
//! - search is serial per query; batches fan out over fixed
//!   [`QUERY_BLOCK`]-query blocks, and within a block the fused path
//!   (DESIGN.md §16) streams each probed inverted list once for all
//!   queries that probe it — bit-identical to the serial path because
//!   every dot product keeps the serial element order and candidates
//!   are ranked by their position in the serial candidate layout.
//!
//! `save`/`load` round-trip the exact `f64` bit patterns, so a loaded
//! index answers queries identically to the one that was built.

use crate::shard::{self, read_section, verify_frames, PreparedQuery, ShardTable, MAGIC};
use crate::store::EntityStore;
use mb_common::storage::{atomic_write, Crc32};
use mb_common::util::{top_k_desc, TopK};
use mb_common::{Error, Result, Rng};
use mb_encoders::retrieval::CandidateSource;
use mb_kb::EntityId;
use mb_par::{par_chunk_ranges, par_map_range, Threads};
use mb_tensor::kernels::{dot_block_f64, dot_i8_i32, dot_i8_i64, DOT_BLOCK, I8_EXACT_I32_COLS};
use mb_tensor::quant::{f16_to_f64, QuantMode};
use mb_tensor::Tensor;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

/// Canonical index file name inside a store directory.
pub const IVF_FILE: &str = "IVF";

/// Rows scored per parallel work item during build.
const ASSIGN_CHUNK: usize = 4096;

/// Queries per fused search block: centroid rows and probed inverted
/// lists are streamed once per block instead of once per query. Blocks
/// are a fixed function of query index, so the worker count never
/// changes which queries share a block. Pinned to the width the
/// multi-accumulator kernels specialize for.
const QUERY_BLOCK: usize = DOT_BLOCK;

/// Build-time parameters of an IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of k-means clusters (inverted lists).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// Cap on rows used to train centroids (strided subsample).
    pub train_cap: usize,
    /// Lloyd iterations.
    pub rounds: usize,
    /// Centroid-init seed.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 64, nprobe: 8, train_cap: 65_536, rounds: 8, seed: 0 }
    }
}

/// A built (or loaded) IVF index bound to its store.
pub struct IvfIndex {
    store: Arc<EntityStore>,
    dim: usize,
    nprobe: usize,
    /// `nlist * dim`, row-major.
    centroids: Vec<f64>,
    /// Row ids per centroid, each list ascending.
    lists: Vec<Vec<u32>>,
    /// Per-list packed copies of the quantized rows (FAISS-style:
    /// lists own their codes), so the fused batch path streams each
    /// probed list as one contiguous block with no per-row shard
    /// resolution. Derived from the store at build/load — never
    /// serialized — and byte-identical to the shard tables, so scoring
    /// from it is bit-identical to [`EntityStore::score_row_prepared`].
    /// Costs one extra copy of the code tables (`n * dim` codes plus
    /// `n` scales for int8).
    packed: PackedLists,
}

/// Inverted-list-ordered copies of the store's quantized rows.
enum PackedLists {
    /// binary16 rows: `list.len() * dim` bit patterns per list.
    F16(Vec<Vec<u16>>),
    /// Per-row symmetric int8 rows plus their scales.
    Int8 {
        /// `list.len() * dim` codes per list, row-major in list order.
        codes: Vec<Vec<i8>>,
        /// One dequantization scale per list row.
        scales: Vec<Vec<f64>>,
    },
}

/// Gather every list's rows out of the shard tables into contiguous
/// per-list blocks. The store's quant mode is uniform across shards
/// (enforced by [`EntityStore::open`] and the builder), so the table
/// match per shard never misses.
fn pack_lists(store: &EntityStore, lists: &[Vec<u32>], dim: usize) -> PackedLists {
    let shards = store.shards();
    let cap = store.shard_capacity();
    match store.quant_mode() {
        QuantMode::Int8 => {
            let mut codes = Vec::with_capacity(lists.len());
            let mut scales = Vec::with_capacity(lists.len());
            for list in lists {
                let mut lc = Vec::with_capacity(list.len() * dim);
                let mut ls = Vec::with_capacity(list.len());
                for &row in list {
                    let (si, local) = (row as usize / cap, row as usize % cap);
                    if let ShardTable::Int8(t) = shards[si].table() {
                        lc.extend_from_slice(&t.codes()[local * dim..(local + 1) * dim]);
                        ls.push(t.scales()[local]);
                    }
                }
                codes.push(lc);
                scales.push(ls);
            }
            PackedLists::Int8 { codes, scales }
        }
        _ => {
            let mut bits = Vec::with_capacity(lists.len());
            for list in lists {
                let mut lb = Vec::with_capacity(list.len() * dim);
                for &row in list {
                    let (si, local) = (row as usize / cap, row as usize % cap);
                    if let ShardTable::F16(t) = shards[si].table() {
                        lb.extend_from_slice(&t.bits()[local * dim..(local + 1) * dim]);
                    }
                }
                bits.push(lb);
            }
            PackedLists::F16(bits)
        }
    }
}

/// Best centroid for `v`: max inner product, lowest index on ties.
fn best_centroid(v: &[f64], centroids: &[f64], nlist: usize, dim: usize) -> u32 {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for c in 0..nlist {
        let base = c * dim;
        let mut s = 0.0;
        for (j, &x) in v.iter().enumerate() {
            s += centroids[base + j] * x;
        }
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    u32::try_from(best).unwrap_or(u32::MAX)
}

/// Assign every row of `vectors` (a flat `n * dim` slice) to its best
/// centroid, fanning out over fixed chunks. Chunk results concatenate
/// in chunk order, so the output is independent of `threads`.
fn assign_flat(
    vectors: &[f64],
    dim: usize,
    centroids: &[f64],
    nlist: usize,
    threads: Threads,
) -> Vec<u32> {
    let n = vectors.len() / dim;
    let chunks = n.div_ceil(ASSIGN_CHUNK).max(1);
    let parts = par_map_range(threads, chunks, |c| {
        let lo = c * ASSIGN_CHUNK;
        let hi = (lo + ASSIGN_CHUNK).min(n);
        let mut out = Vec::with_capacity(hi.saturating_sub(lo));
        for row in lo..hi {
            out.push(best_centroid(&vectors[row * dim..(row + 1) * dim], centroids, nlist, dim));
        }
        out
    });
    let mut assign = Vec::with_capacity(n);
    for p in parts {
        assign.extend_from_slice(&p);
    }
    assign
}

impl IvfIndex {
    /// Train centroids on a strided subsample and assign every store
    /// row to its nearest centroid.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when `nlist` is zero or exceeds the
    /// store size, or `rounds`/`train_cap` is zero.
    pub fn build(store: Arc<EntityStore>, cfg: IvfConfig, threads: Threads) -> Result<IvfIndex> {
        let n = store.len();
        let dim = store.dim();
        if cfg.nlist == 0 || cfg.rounds == 0 || cfg.train_cap == 0 {
            return Err(Error::InvalidConfig(
                "ivf nlist, rounds and train_cap must be positive".to_string(),
            ));
        }
        if cfg.nlist > n {
            return Err(Error::InvalidConfig(format!(
                "ivf nlist {} exceeds store size {n}",
                cfg.nlist
            )));
        }
        // Training set: every `stride`-th row, dequantized once. The
        // stride is a function of (n, train_cap) only, so the sample —
        // and everything downstream — is reproducible.
        let stride = n.div_ceil(cfg.train_cap).max(1);
        let sample_rows: Vec<usize> = (0..n).step_by(stride).collect();
        let sn = sample_rows.len();
        if cfg.nlist > sn {
            return Err(Error::InvalidConfig(format!(
                "ivf nlist {} exceeds training sample {sn}; raise train_cap",
                cfg.nlist
            )));
        }
        let mut sample = vec![0.0f64; sn * dim];
        for (si, &row) in sample_rows.iter().enumerate() {
            store.dequant_row_into(row, &mut sample[si * dim..(si + 1) * dim]);
        }
        // Seeded init: distinct sample rows, one serial draw.
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let picks = rng.sample_indices(sn, cfg.nlist);
        let mut centroids = vec![0.0f64; cfg.nlist * dim];
        for (c, &si) in picks.iter().enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&sample[si * dim..(si + 1) * dim]);
        }
        // Lloyd: parallel assignment (chunk order), serial update.
        for _round in 0..cfg.rounds {
            let assign = assign_flat(&sample, dim, &centroids, cfg.nlist, threads);
            let mut sums = vec![0.0f64; cfg.nlist * dim];
            let mut counts = vec![0usize; cfg.nlist];
            for (si, &c) in assign.iter().enumerate() {
                let c = c as usize;
                counts[c] += 1;
                let base = c * dim;
                for (j, &v) in sample[si * dim..(si + 1) * dim].iter().enumerate() {
                    sums[base + j] += v;
                }
            }
            for c in 0..cfg.nlist {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for j in 0..dim {
                        centroids[c * dim + j] = sums[c * dim + j] * inv;
                    }
                }
                // Empty cluster: keep the previous centroid verbatim.
            }
        }
        // Final assignment of every row, shard by shard in bounded RAM.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); cfg.nlist];
        let mut flat = Vec::new();
        let mut base_row = 0usize;
        for sh in store.shards() {
            let rows = sh.len();
            flat.clear();
            flat.resize(rows * dim, 0.0);
            for r in 0..rows {
                sh.dequant_row_into(r, &mut flat[r * dim..(r + 1) * dim]);
            }
            let assign = assign_flat(&flat, dim, &centroids, cfg.nlist, threads);
            for (r, &c) in assign.iter().enumerate() {
                let row = u32::try_from(base_row + r)
                    .map_err(|_| Error::InvalidConfig("store exceeds u32 rows".to_string()))?;
                lists[c as usize].push(row);
            }
            base_row += rows;
        }
        let packed = pack_lists(&store, &lists, dim);
        Ok(IvfIndex {
            store,
            dim,
            nprobe: cfg.nprobe.clamp(1, cfg.nlist),
            centroids,
            lists,
            packed,
        })
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Re-bound probe width (clamped to `[1, nlist]`); returns the
    /// effective value. Lets benchmarks sweep recall-vs-speed without
    /// rebuilding.
    pub fn set_nprobe(&mut self, nprobe: usize) -> usize {
        self.nprobe = nprobe.clamp(1, self.nlist());
        self.nprobe
    }

    /// The store this index retrieves from.
    pub fn store(&self) -> &Arc<EntityStore> {
        &self.store
    }

    /// Serialize to `mb-store v1` framing: sections `meta`,
    /// `centroids` (f64 bit patterns, LE), `lists` (per-list length
    /// prefix then row ids, u32 LE).
    ///
    /// # Errors
    /// [`Error::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// The serialized index, byte-for-byte what [`IvfIndex::save`]
    /// writes (exposed so tests can assert bit-identical rebuilds).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nlist = self.lists.len();
        let meta = format!(
            "entities {}\ndim {}\nnlist {nlist}\nnprobe {}\n",
            self.store.len(),
            self.dim,
            self.nprobe
        );
        let mut centroids = Vec::with_capacity(self.centroids.len() * 8);
        for &v in &self.centroids {
            centroids.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut lists = Vec::new();
        for list in &self.lists {
            let len = u32::try_from(list.len()).unwrap_or(u32::MAX);
            lists.extend_from_slice(&len.to_le_bytes());
            for &row in list {
                lists.extend_from_slice(&row.to_le_bytes());
            }
        }
        let mut out = format!("{MAGIC} 3\n").into_bytes();
        for (name, payload) in
            [("meta", meta.as_bytes()), ("centroids", &centroids), ("lists", &lists)]
        {
            let mut h = Crc32::new();
            h.update(name.as_bytes());
            h.update(b"\n");
            h.update(payload);
            out.extend_from_slice(
                format!("section {name} {} {:08x}\n", payload.len(), h.finish()).as_bytes(),
            );
            out.extend_from_slice(payload);
            out.push(b'\n');
        }
        out
    }

    /// Load a saved index and bind it to `store`, verifying framing,
    /// CRCs, and that the geometry matches the store.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on corruption or a store mismatch;
    /// [`Error::Io`] when the file cannot be read.
    pub fn load(path: &Path, store: Arc<EntityStore>) -> Result<IvfIndex> {
        let what = path.to_string_lossy().into_owned();
        let mut file = File::open(path).map_err(|e| Error::Io(format!("{what}: {e}")))?;
        let frames = verify_frames(&mut file, &what)?;
        let names: Vec<&str> = frames.iter().map(|(n, _, _)| n.as_str()).collect();
        if names != ["meta", "centroids", "lists"] {
            return Err(Error::Checkpoint(format!(
                "{what}: expected sections [meta, centroids, lists], got {names:?}"
            )));
        }
        let meta_bytes = read_section(&mut file, frames[0].2, frames[0].1, &what)?;
        let meta = shard::parse_meta(&meta_bytes, &what)?;
        let entities = shard::meta_number(&meta, "entities", &what)? as usize;
        let dim = shard::meta_number(&meta, "dim", &what)? as usize;
        let nlist = shard::meta_number(&meta, "nlist", &what)? as usize;
        let nprobe = shard::meta_number(&meta, "nprobe", &what)? as usize;
        if entities != store.len() || dim != store.dim() {
            return Err(Error::Checkpoint(format!(
                "{what}: index built for {entities} entities dim {dim}, store has {} dim {}",
                store.len(),
                store.dim()
            )));
        }
        if nlist == 0 || nprobe == 0 || nprobe > nlist {
            return Err(Error::Checkpoint(format!(
                "{what}: inconsistent nlist {nlist} / nprobe {nprobe}"
            )));
        }
        let cbytes = read_section(&mut file, frames[1].2, frames[1].1, &what)?;
        if cbytes.len() != nlist * dim * 8 {
            return Err(Error::Checkpoint(format!(
                "{what}: centroids section is {} bytes, want {}",
                cbytes.len(),
                nlist * dim * 8
            )));
        }
        let mut centroids = Vec::with_capacity(nlist * dim);
        for chunk in cbytes.chunks_exact(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            centroids.push(f64::from_bits(u64::from_le_bytes(b)));
        }
        let lbytes = read_section(&mut file, frames[2].2, frames[2].1, &what)?;
        let mut lists = Vec::with_capacity(nlist);
        let mut pos = 0usize;
        let mut covered = 0usize;
        let take_u32 = |bytes: &[u8], pos: &mut usize| -> Result<u32> {
            let end = pos
                .checked_add(4)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| Error::Checkpoint(format!("{what}: lists section truncated")))?;
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[*pos..end]);
            *pos = end;
            Ok(u32::from_le_bytes(b))
        };
        for _ in 0..nlist {
            let len = take_u32(&lbytes, &mut pos)? as usize;
            let mut list = Vec::with_capacity(len);
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let row = take_u32(&lbytes, &mut pos)?;
                if (row as usize) >= entities || prev.is_some_and(|p| p >= row) {
                    return Err(Error::Checkpoint(format!(
                        "{what}: inverted list rows out of range or not ascending"
                    )));
                }
                prev = Some(row);
                list.push(row);
            }
            lists.push(list);
            covered += len;
        }
        if pos != lbytes.len() {
            return Err(Error::Checkpoint(format!("{what}: trailing bytes in lists section")));
        }
        if covered != entities {
            return Err(Error::Checkpoint(format!(
                "{what}: inverted lists cover {covered} rows, store has {entities}"
            )));
        }
        let packed = pack_lists(&store, &lists, dim);
        Ok(IvfIndex { store, dim, nprobe, centroids, lists, packed })
    }

    /// Fused search for one block of queries (DESIGN.md §16).
    ///
    /// Layout: (1) one centroid-outer pass scores every centroid
    /// against every query in the block — each centroid row is
    /// streamed once per block; (2) each query picks its probes with
    /// [`top_k_desc`] and quantizes once into a [`PreparedQuery`];
    /// (3) `(query, probed list)` pairs are grouped by list, each pair
    /// carrying the offset of that list's first candidate in the
    /// query's *serial* candidate array; (4) each distinct list is
    /// streamed once — rows resolved to their shard once, f16 rows
    /// decoded once — and scored against every member query, feeding
    /// per-query [`TopK`] selectors keyed by serial candidate
    /// position; (5) selected positions map back through the query's
    /// probe spans to row ids.
    ///
    /// Bit-identical to [`CandidateSource::top_k`] per query: every
    /// dot product keeps the serial element order (the int8 fold may
    /// narrow to `i32`, which sums to the same exact integer), pushed
    /// positions equal the serial candidate layout, and [`TopK`] keeps
    /// exactly the set and order of [`top_k_desc`] regardless of
    /// arrival order.
    fn top_k_block(
        &self,
        queries: &Tensor,
        range: std::ops::Range<usize>,
        k: usize,
    ) -> Vec<Vec<(EntityId, f64)>> {
        let nq = range.len();
        let nlist = self.lists.len();
        let dim = self.dim;
        // (1) Centroid scores via the multi-accumulator block dot: the
        // query block is transposed once, then every centroid row is
        // streamed once and folded into `nq` independent accumulator
        // chains — same per-query fold order, ~`nq`-way ILP.
        let mut qt = vec![0.0f64; dim * nq];
        for (qslot, qi) in range.clone().enumerate() {
            for (j, &x) in queries.row(qi).iter().enumerate() {
                qt[j * nq + qslot] = x;
            }
        }
        let mut cscores = vec![0.0f64; nq * nlist];
        let mut cacc = vec![0.0f64; nq];
        for c in 0..nlist {
            let cent = &self.centroids[c * dim..(c + 1) * dim];
            dot_block_f64(cent, &qt, nq, &mut cacc);
            for (qslot, &s) in cacc.iter().enumerate() {
                cscores[qslot * nlist + c] = s;
            }
        }
        // (2) Probe selection + one quantization per query.
        let mut probes_per_q: Vec<Vec<usize>> = Vec::with_capacity(nq);
        let mut preps: Vec<PreparedQuery<'_>> = Vec::with_capacity(nq);
        for (qslot, qi) in range.clone().enumerate() {
            probes_per_q
                .push(top_k_desc(&cscores[qslot * nlist..(qslot + 1) * nlist], self.nprobe));
            preps.push(PreparedQuery::new(queries.row(qi)));
        }
        // (3) Group probes by list. `base` is where this list's
        // candidates start in the query's serial candidate array.
        let mut members: Vec<(usize, usize, usize)> = Vec::new();
        for (qslot, probes) in probes_per_q.iter().enumerate() {
            let mut base = 0usize;
            for &c in probes {
                members.push((c, qslot, base));
                base += self.lists[c].len();
            }
        }
        members.sort_unstable();
        // (4) Stream each probed list once for all its member queries,
        // straight out of its packed code block — no per-row shard
        // resolution on the hot path. The two table types want
        // opposite loop orders: f16 rows decode once and take the
        // multi-accumulator f64 tile across members (f64 dots are
        // latency chains a lone fold is stuck behind), while int8 rows
        // take one contiguous SIMD dot per member — integer folds
        // vectorize on their own, so a plain dot against the member's
        // prepared codes beats an interleaved tile. Int8 scores land
        // in a flat scratch first, so selection runs as a block pass.
        let mut sels: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
        let narrow = dim <= I8_EXACT_I32_COLS;
        let mut decoded = vec![0.0f64; dim];
        let mut rscores = vec![0.0f64; self.lists.iter().map(Vec::len).max().unwrap_or(0)];
        let (mut gslots, mut gbases) = (Vec::new(), Vec::new());
        let (mut gq_t, mut gscales) = (Vec::new(), Vec::new());
        let mut gqc: Vec<&[i8]> = Vec::new();
        let mut macc = Vec::new();
        let mut at = 0usize;
        while at < members.len() {
            let c = members[at].0;
            let mut end = at;
            while end < members.len() && members[end].0 == c {
                end += 1;
            }
            let group = &members[at..end];
            let m = group.len();
            gslots.clear();
            gbases.clear();
            gq_t.clear();
            gscales.clear();
            gqc.clear();
            for &(_, qslot, base) in group {
                gslots.push(qslot);
                gbases.push(base);
                gscales.push(preps[qslot].scale);
                gqc.push(preps[qslot].codes.as_slice());
            }
            for j in 0..dim {
                for &(_, qslot, _) in group {
                    gq_t.push(preps[qslot].query[j]);
                }
            }
            macc.clear();
            macc.resize(m, 0.0);
            let rows = self.lists[c].len();
            match &self.packed {
                PackedLists::F16(bits) => {
                    let lb = &bits[c];
                    for pos in 0..rows {
                        for (d, &h) in decoded.iter_mut().zip(&lb[pos * dim..(pos + 1) * dim]) {
                            *d = f16_to_f64(h);
                        }
                        dot_block_f64(&decoded, &gq_t, m, &mut macc);
                        for (mi, &s) in macc.iter().enumerate() {
                            sels[gslots[mi]].push(gbases[mi] + pos, s);
                        }
                    }
                }
                PackedLists::Int8 { codes, scales } => {
                    let lc = &codes[c];
                    let ls = &scales[c];
                    for mi in 0..m {
                        let qc = gqc[mi];
                        let qs = gscales[mi];
                        // Branch-free scoring pass into a flat scratch —
                        // one contiguous streamed dot per row — then one
                        // block-select pass over the L1-hot scores.
                        let sc = &mut rscores[..rows];
                        if narrow {
                            for ((s, rc), &rs) in sc.iter_mut().zip(lc.chunks_exact(dim)).zip(ls) {
                                *s = f64::from(dot_i8_i32(rc, qc)) * (rs * qs);
                            }
                        } else {
                            for ((s, rc), &rs) in sc.iter_mut().zip(lc.chunks_exact(dim)).zip(ls) {
                                *s = dot_i8_i64(rc, qc) as f64 * (rs * qs);
                            }
                        }
                        sels[gslots[mi]].push_block(gbases[mi], sc);
                    }
                }
            }
            at = end;
        }
        // (5) Selected serial positions map back to rows through the
        // query's probe spans (nprobe spans — a linear scan is cheap).
        let mut out = Vec::with_capacity(nq);
        for (qslot, sel) in sels.into_iter().enumerate() {
            let ranked = sel.into_sorted();
            let mut result = Vec::with_capacity(ranked.len());
            for (posn, score) in ranked {
                let mut start = 0usize;
                for &c in &probes_per_q[qslot] {
                    let len = self.lists[c].len();
                    if posn < start + len {
                        result.push((EntityId(self.lists[c][posn - start]), score));
                        break;
                    }
                    start += len;
                }
            }
            out.push(result);
        }
        out
    }
}

impl std::fmt::Debug for IvfIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvfIndex")
            .field("entities", &self.store.len())
            .field("dim", &self.dim)
            .field("nlist", &self.lists.len())
            .field("nprobe", &self.nprobe)
            .finish()
    }
}

impl CandidateSource for IvfIndex {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn max_id(&self) -> Option<EntityId> {
        let n = self.store.len();
        if n == 0 {
            None
        } else {
            u32::try_from(n - 1).ok().map(EntityId)
        }
    }

    fn top_k(&self, query: &[f64], k: usize) -> Vec<(EntityId, f64)> {
        let nlist = self.lists.len();
        let cscores: Vec<f64> = (0..nlist)
            .map(|c| {
                let base = c * self.dim;
                query.iter().enumerate().map(|(j, &q)| self.centroids[base + j] * q).sum()
            })
            .collect();
        let probes = top_k_desc(&cscores, self.nprobe);
        // Quantize the query once; each probed row then costs one
        // integer dot (int8 stores), matching the flat-scan kernel's
        // arithmetic bit for bit.
        let prep = crate::shard::PreparedQuery::new(query);
        let mut rows: Vec<u32> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for c in probes {
            for &row in &self.lists[c] {
                rows.push(row);
                scores.push(self.store.score_row_prepared(row as usize, &prep));
            }
        }
        top_k_desc(&scores, k).into_iter().map(|i| (EntityId(rows[i]), scores[i])).collect()
    }

    /// Fused multi-query search: fixed [`QUERY_BLOCK`]-query blocks
    /// fan out across workers, and [`IvfIndex::top_k_block`] streams
    /// each probed inverted list once per block. Bit-identical to
    /// per-query [`CandidateSource::top_k`] at any batch size and any
    /// [`Threads`] value.
    ///
    /// # Errors
    /// [`Error::ShapeMismatch`] when `queries` is not rank-2 or its
    /// width disagrees with the store dimensionality.
    fn top_k_batch(
        &self,
        queries: &Tensor,
        k: usize,
        threads: Threads,
    ) -> Result<Vec<Vec<(EntityId, f64)>>> {
        if queries.rank() != 2 {
            return Err(Error::shape(
                "IvfIndex::top_k_batch",
                "[q, dim] queries",
                format!("rank-{} tensor {:?}", queries.rank(), queries.shape()),
            ));
        }
        if queries.rows() > 0 && queries.cols() != self.dim {
            return Err(Error::shape(
                "IvfIndex::top_k_batch",
                format!("query dim {}", self.dim),
                format!("query dim {}", queries.cols()),
            ));
        }
        let blocks = par_chunk_ranges(threads, queries.rows(), QUERY_BLOCK, |_, range| {
            self.top_k_block(queries, range, k)
        });
        Ok(blocks.into_iter().flatten().collect())
    }
}
