//! Property-based tests of the RNG and numeric utilities.

use mb_check::{gen, prop_assert, prop_assert_eq};
use mb_common::util::{argsort_desc, log_sum_exp, softmax, top_k_desc};
use mb_common::Rng;

mb_check::check! {
    #![config(cases = 128)]

    fn below_stays_in_range(seed in gen::u64_any(), n in gen::usize_in(1..1000)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    fn shuffle_preserves_multiset(seed in gen::u64_any(), mut xs in gen::vec_of(gen::u32_in(0..100), 0..50)) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut original = xs.clone();
        rng.shuffle(&mut xs);
        original.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(original, xs);
    }

    fn choose_weighted_only_picks_positive_weights(
        seed in gen::u64_any(),
        weights in gen::vec_of(gen::f64_in(0.0..5.0), 1..12),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let total: f64 = weights.iter().sum();
        for _ in 0..30 {
            let i = rng.choose_weighted(&weights);
            prop_assert!(i < weights.len());
            if total > 0.0 {
                prop_assert!(weights[i] > 0.0, "picked zero-weight index {i} of {weights:?}");
            }
        }
    }

    fn split_streams_are_reproducible(seed in gen::u64_any(), stream in gen::u64_any()) {
        let parent = Rng::seed_from_u64(seed);
        let mut a = parent.split(stream);
        let mut b = parent.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn log_sum_exp_bounds(xs in gen::vec_of(gen::f64_in(-50.0..50.0), 1..20)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    fn softmax_is_a_distribution(xs in gen::vec_of(gen::f64_in(-30.0..30.0), 1..20)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    fn top_k_is_argsort_prefix(xs in gen::vec_of(gen::f64_in(-100.0..100.0), 0..40), k in gen::usize_in(0..50)) {
        let top = top_k_desc(&xs, k);
        let full = argsort_desc(&xs);
        prop_assert_eq!(top.as_slice(), &full[..k.min(xs.len())]);
    }

    fn gaussian_is_finite(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.gaussian().is_finite());
        }
    }
}
