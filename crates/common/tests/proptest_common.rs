//! Property-based tests of the RNG, numeric utilities, and LRU cache.

use mb_check::{gen, prop_assert, prop_assert_eq};
use mb_common::util::{argsort_desc, log_sum_exp, softmax, top_k_desc};
use mb_common::{LruCache, Rng};

/// Reference LRU: a vector ordered most → least recently used.
struct NaiveLru {
    cap: usize,
    entries: Vec<(u32, u32)>,
}

impl NaiveLru {
    fn get(&mut self, k: u32) -> Option<u32> {
        let i = self.entries.iter().position(|&(ek, _)| ek == k)?;
        let e = self.entries.remove(i);
        self.entries.insert(0, e);
        Some(e.1)
    }

    fn put(&mut self, k: u32, v: u32) {
        if let Some(i) = self.entries.iter().position(|&(ek, _)| ek == k) {
            self.entries.remove(i);
        }
        self.entries.insert(0, (k, v));
        self.entries.truncate(self.cap);
    }
}

mb_check::check! {
    #![config(cases = 128)]

    fn below_stays_in_range(seed in gen::u64_any(), n in gen::usize_in(1..1000)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    fn shuffle_preserves_multiset(seed in gen::u64_any(), mut xs in gen::vec_of(gen::u32_in(0..100), 0..50)) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut original = xs.clone();
        rng.shuffle(&mut xs);
        original.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(original, xs);
    }

    fn choose_weighted_only_picks_positive_weights(
        seed in gen::u64_any(),
        weights in gen::vec_of(gen::f64_in(0.0..5.0), 1..12),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let total: f64 = weights.iter().sum();
        for _ in 0..30 {
            let i = rng.choose_weighted(&weights);
            prop_assert!(i < weights.len());
            if total > 0.0 {
                prop_assert!(weights[i] > 0.0, "picked zero-weight index {i} of {weights:?}");
            }
        }
    }

    fn split_streams_are_reproducible(seed in gen::u64_any(), stream in gen::u64_any()) {
        let parent = Rng::seed_from_u64(seed);
        let mut a = parent.split(stream);
        let mut b = parent.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn log_sum_exp_bounds(xs in gen::vec_of(gen::f64_in(-50.0..50.0), 1..20)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    fn softmax_is_a_distribution(xs in gen::vec_of(gen::f64_in(-30.0..30.0), 1..20)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    fn top_k_is_argsort_prefix(xs in gen::vec_of(gen::f64_in(-100.0..100.0), 0..40), k in gen::usize_in(0..50)) {
        let top = top_k_desc(&xs, k);
        let full = argsort_desc(&xs);
        prop_assert_eq!(top.as_slice(), &full[..k.min(xs.len())]);
    }

    fn gaussian_is_finite(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.gaussian().is_finite());
        }
    }

    fn lru_matches_naive_model(
        cap in gen::usize_in(1..9),
        ops in gen::vec_of(gen::u32_in(0..64), 0..120),
    ) {
        // Op encoding: low 5 bits = key, bit 5 = put (vs get). Values
        // are a running counter so updates are observable.
        let mut lru = LruCache::new(cap);
        let mut naive = NaiveLru { cap, entries: Vec::new() };
        let mut counter = 0u32;
        for op in ops {
            let key = op & 0x1F;
            if op & 0x20 != 0 {
                counter += 1;
                lru.put(key, counter);
                naive.put(key, counter);
            } else {
                prop_assert_eq!(lru.get(&key).copied(), naive.get(key), "get({key})");
            }
            prop_assert_eq!(lru.len(), naive.entries.len());
            prop_assert!(lru.len() <= cap);
            let order: Vec<u32> = lru.keys_by_recency().into_iter().copied().collect();
            let naive_order: Vec<u32> = naive.entries.iter().map(|&(k, _)| k).collect();
            prop_assert_eq!(order, naive_order);
        }
    }

    fn lru_counters_add_up(
        cap in gen::usize_in(0..6),
        keys in gen::vec_of(gen::u32_in(0..16), 0..60),
    ) {
        let mut lru = LruCache::new(cap);
        let mut expected_hits = 0;
        for (i, k) in keys.iter().enumerate() {
            if lru.peek(k).is_some() {
                expected_hits += 1;
            }
            if lru.get(k).is_none() {
                lru.put(*k, i as u32);
            }
        }
        prop_assert_eq!(lru.hits(), expected_hits);
        prop_assert_eq!(lru.hits() + lru.misses(), keys.len() as u64);
    }
}
