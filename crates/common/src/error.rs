//! Workspace-wide error type.
//!
//! Library crates in this workspace return [`Result`] for fallible
//! operations that a caller can reasonably recover from (bad
//! configuration, shape mismatches discovered at runtime boundaries,
//! serialization problems). Programming errors — indexing bugs, violated
//! internal invariants — panic instead, per standard Rust practice.

use std::fmt;

/// Errors produced by metablink-rs crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Tensor or batch shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape(s).
        expected: String,
        /// What the caller actually provided.
        got: String,
        /// The operation that rejected the shapes.
        op: &'static str,
    },
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A referenced entity / domain / vocabulary item does not exist.
    NotFound(String),
    /// A dataset or model file failed to parse.
    Parse(String),
    /// Training diverged (NaN/Inf loss or parameters).
    Diverged(String),
    /// An empty input where at least one element is required.
    Empty(&'static str),
    /// An I/O operation failed. Callers may treat this as transient and
    /// retry (the checkpoint manager does, with bounded backoff).
    Io(String),
    /// A checkpoint is unusable: corrupted, truncated, or missing
    /// required state — and no earlier good generation could be used.
    Checkpoint(String),
    /// A run was deliberately aborted mid-flight (e.g. by an injected
    /// kill from a fault-testing [`crate::storage::StepBudget`]).
    Aborted(String),
    /// A parallel worker panicked. The payload message is preserved so
    /// a poisoned shard surfaces as a recoverable error at the fork
    /// point instead of a nested panic (see `mb-par`).
    Worker(String),
    /// An internal invariant was violated on a path that must stay
    /// panic-free (serve-reachable code). Indicates a bug, but one the
    /// serving layer can report as a failed request instead of dying.
    Internal(String),
}

impl Error {
    /// Convenience constructor for [`Error::ShapeMismatch`].
    pub fn shape(op: &'static str, expected: impl Into<String>, got: impl Into<String>) -> Self {
        Error::ShapeMismatch { expected: expected.into(), got: got.into(), op }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { expected, got, op } => {
                write!(f, "shape mismatch in {op}: expected {expected}, got {got}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Diverged(msg) => write!(f, "training diverged: {msg}"),
            Error::Empty(what) => write!(f, "empty input: {what}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
            Error::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            Error::Aborted(msg) => write!(f, "aborted: {msg}"),
            Error::Worker(msg) => write!(f, "parallel worker panicked: {msg}"),
            Error::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::shape("matmul", "[2, 3]", "[4, 5]");
        assert_eq!(e.to_string(), "shape mismatch in matmul: expected [2, 3], got [4, 5]");
        assert!(Error::InvalidConfig("dim must be > 0".into())
            .to_string()
            .contains("dim must be > 0"));
        assert!(Error::Empty("batch").to_string().contains("batch"));
        assert!(Error::Io("disk on fire".into()).to_string().contains("disk on fire"));
        assert!(Error::Checkpoint("bad crc".into()).to_string().starts_with("checkpoint"));
        assert!(Error::Aborted("killed at step 3".into()).to_string().contains("step 3"));
        assert!(Error::Internal("empty batch result".into())
            .to_string()
            .starts_with("internal invariant"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
