//! Small numeric and collection utilities shared across the workspace.

/// Numerically stable log-sum-exp over a slice.
///
/// Returns `-inf` for an empty slice (the identity of log-sum-exp).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Softmax of a slice (stable). Empty input yields an empty vector.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|x| (x - m).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Mean of a slice; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0.0 for fewer than two elements.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Indices that would sort `xs` descending (ties broken by index, stable).
pub fn argsort_desc(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]));
    idx
}

/// Index of the maximum element; `None` for empty input. NaNs lose ties.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Top-`k` indices by value, descending. Uses a partial selection so the
/// cost is `O(n log k)` — this is the hot path of dense retrieval.
pub fn top_k_desc(xs: &[f64], k: usize) -> Vec<usize> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Min-heap entry ordered by score then (reversed) index for
    /// deterministic tie-breaking.
    struct Entry(f64, usize);
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we want the *worst* kept
            // element on top so it can be evicted.
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| self.1.cmp(&other.1))
        }
    }

    if k == 0 || xs.is_empty() {
        return Vec::new();
    }
    let k = k.min(xs.len());
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        if heap.len() < k {
            heap.push(Entry(x, i));
        } else if let Some(worst) = heap.peek() {
            if x > worst.0 || (x == worst.0 && i < worst.1) {
                heap.pop();
                heap.push(Entry(x, i));
            }
        }
    }
    let mut out: Vec<(f64, usize)> = heap.into_iter().map(|Entry(x, i)| (x, i)).collect();
    out.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    out.into_iter().map(|(_, i)| i).collect()
}

/// Clamp a value into `[lo, hi]`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// True if two floats are within `tol` absolutely or relatively.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs: [f64; 3] = [1.0, 2.0, 3.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), naive, 1e-12));
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let xs = [1000.0, 1000.0];
        let v = log_sum_exp(&xs);
        assert!(approx_eq(v, 1000.0 + 2.0_f64.ln(), 1e-9));
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[0.0, 1.0, 2.0]);
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!(approx_eq(mean(&[1.0, 2.0, 3.0]), 2.0, 1e-12));
        assert!(approx_eq(std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.138, 1e-3));
    }

    #[test]
    fn argsort_desc_orders() {
        assert_eq!(argsort_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn argmax_handles_nan_and_empty() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn top_k_matches_argsort_prefix() {
        let xs = [0.3, 0.9, 0.1, 0.9, 0.5, -1.0];
        assert_eq!(top_k_desc(&xs, 3), argsort_desc(&xs)[..3].to_vec());
        assert_eq!(top_k_desc(&xs, 0), Vec::<usize>::new());
        assert_eq!(top_k_desc(&xs, 100).len(), xs.len());
    }

    #[test]
    fn top_k_deterministic_on_ties() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(top_k_desc(&xs, 2), vec![0, 1]);
    }
}
