//! Small numeric and collection utilities shared across the workspace.

/// Numerically stable log-sum-exp over a slice.
///
/// Returns `-inf` for an empty slice (the identity of log-sum-exp).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Softmax of a slice (stable). Empty input yields an empty vector.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|x| (x - m).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Mean of a slice; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0.0 for fewer than two elements.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Indices that would sort `xs` descending (ties broken by index, stable).
pub fn argsort_desc(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]));
    idx
}

/// Index of the maximum element; `None` for empty input. NaNs lose ties.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Min-heap entry of [`TopK`], ordered by score then (reversed) index
/// for deterministic tie-breaking.
struct TopKEntry(f64, usize);

impl PartialEq for TopKEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for TopKEntry {}
impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopKEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the *worst* kept
        // element on top so it can be evicted.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Streaming top-`k` selection over `(index, score)` pairs — the
/// incremental form of [`top_k_desc`], for callers that produce scores
/// on the fly (the fused batched retrieval paths) instead of
/// materialising a score array first.
///
/// The kept set and the final ordering are **identical to
/// [`top_k_desc`]** over the same `(index, score)` pairs, and they are
/// independent of push order: candidates are ranked under the strict
/// total order "higher score first, lowest index on exact float ties"
/// (`+0.0`/`-0.0` tie like `==`, then index), NaN scores are skipped,
/// and [`TopK::into_sorted`] applies the same `total_cmp`-then-index
/// final sort. `top_k_desc` itself is implemented on this selector, so
/// the two cannot drift.
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<TopKEntry>,
}

impl TopK {
    /// A selector keeping the best `k` pushed candidates.
    pub fn new(k: usize) -> TopK {
        // Capacity k+1 keeps evict-then-push reallocation-free; cap it
        // so an over-large k (relative to what will be pushed) does not
        // preallocate absurdly.
        TopK { k, heap: std::collections::BinaryHeap::with_capacity(k.min(1 << 20) + 1) }
    }

    /// Offer one candidate. NaN scores are skipped; on exact float
    /// ties (`==`, so `-0.0` ties `+0.0`) the lower index wins.
    #[inline]
    pub fn push(&mut self, index: usize, score: f64) {
        if score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(TopKEntry(score, index));
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if score > worst.0 || (score == worst.0 && index < worst.1) {
                // Replace-root: one sift instead of a pop + push pair.
                *worst = TopKEntry(score, index);
            }
        }
    }

    /// Offer a contiguous run of candidates `(base + i, scores[i])`.
    /// Equivalent to pushing each in order; once the selector is full,
    /// 8-wide chunks whose maximum is strictly below the worst kept
    /// score are skipped wholesale. The maximum test is exact, and a
    /// chunk whose maximum is NaN (all-NaN) drops to the per-element
    /// path where NaNs are skipped one by one — so the kept set is
    /// identical to serial pushes.
    pub fn push_block(&mut self, base: usize, scores: &[f64]) {
        let mut i = 0usize;
        while i < scores.len() {
            if self.heap.len() == self.k {
                if let Some(worst) = self.heap.peek() {
                    let thr = worst.0;
                    while i + 8 <= scores.len() {
                        let c = &scores[i..i + 8];
                        let mx = c[0]
                            .max(c[1])
                            .max(c[2].max(c[3]))
                            .max(c[4].max(c[5]).max(c[6].max(c[7])));
                        // A score equal to the worst can still win on a
                        // lower index (and a NaN maximum means the chunk
                        // needs the per-element path), so only a
                        // strictly-lower maximum skips the whole chunk.
                        if mx < thr {
                            i += 8;
                        } else {
                            break;
                        }
                    }
                    if i >= scores.len() {
                        break;
                    }
                }
            }
            self.push(base + i, scores[i]);
            i += 1;
        }
    }

    /// The kept candidates as `(index, score)`, best first (ties by
    /// lowest index) — the exact sort [`top_k_desc`] uses.
    pub fn into_sorted(self) -> Vec<(usize, f64)> {
        let mut out: Vec<(f64, usize)> =
            self.heap.into_iter().map(|TopKEntry(x, i)| (x, i)).collect();
        out.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        out.into_iter().map(|(x, i)| (i, x)).collect()
    }
}

/// Top-`k` indices by value, descending. Uses a partial selection so the
/// cost is `O(n log k)` — this is the hot path of dense retrieval.
pub fn top_k_desc(xs: &[f64], k: usize) -> Vec<usize> {
    if k == 0 || xs.is_empty() {
        return Vec::new();
    }
    let mut sel = TopK::new(k.min(xs.len()));
    sel.push_block(0, xs);
    sel.into_sorted().into_iter().map(|(i, _)| i).collect()
}

/// Clamp a value into `[lo, hi]`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

/// True if two floats are within `tol` absolutely or relatively.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs: [f64; 3] = [1.0, 2.0, 3.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), naive, 1e-12));
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_inputs() {
        let xs = [1000.0, 1000.0];
        let v = log_sum_exp(&xs);
        assert!(approx_eq(v, 1000.0 + 2.0_f64.ln(), 1e-9));
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[0.0, 1.0, 2.0]);
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!(approx_eq(mean(&[1.0, 2.0, 3.0]), 2.0, 1e-12));
        assert!(approx_eq(std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.138, 1e-3));
    }

    #[test]
    fn argsort_desc_orders() {
        assert_eq!(argsort_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn argmax_handles_nan_and_empty() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0, 0.5]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn top_k_matches_argsort_prefix() {
        let xs = [0.3, 0.9, 0.1, 0.9, 0.5, -1.0];
        assert_eq!(top_k_desc(&xs, 3), argsort_desc(&xs)[..3].to_vec());
        assert_eq!(top_k_desc(&xs, 0), Vec::<usize>::new());
        assert_eq!(top_k_desc(&xs, 100).len(), xs.len());
    }

    #[test]
    fn top_k_deterministic_on_ties() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(top_k_desc(&xs, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_streaming_is_push_order_independent() {
        // Includes exact ties, signed zeros, and a NaN; the kept set and
        // final ordering must not depend on the order candidates arrive.
        let xs = [0.5, 1.0, 1.0, -0.0, 0.0, f64::NAN, 0.5, 2.0, -1.0, 1.0];
        let forward = {
            let mut sel = TopK::new(4);
            for (i, &x) in xs.iter().enumerate() {
                sel.push(i, x);
            }
            sel.into_sorted()
        };
        let reverse = {
            let mut sel = TopK::new(4);
            for (i, &x) in xs.iter().enumerate().rev() {
                sel.push(i, x);
            }
            sel.into_sorted()
        };
        let interleaved = {
            let mut sel = TopK::new(4);
            for (i, &x) in xs.iter().enumerate().skip(1).step_by(2) {
                sel.push(i, x);
            }
            for (i, &x) in xs.iter().enumerate().step_by(2) {
                sel.push(i, x);
            }
            sel.into_sorted()
        };
        assert_eq!(forward, reverse);
        assert_eq!(forward, interleaved);
        let serial: Vec<usize> = top_k_desc(&xs, 4);
        assert_eq!(forward.iter().map(|&(i, _)| i).collect::<Vec<_>>(), serial);
        for &(i, x) in &forward {
            assert_eq!(x.to_bits(), xs[i].to_bits());
        }
    }

    #[test]
    fn top_k_streaming_signed_zero_tie_keeps_lower_index() {
        let mut sel = TopK::new(1);
        sel.push(3, -0.0);
        sel.push(7, 0.0);
        assert_eq!(sel.into_sorted(), vec![(3, -0.0)]);
    }
}
