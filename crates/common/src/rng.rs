//! Deterministic, portable pseudo-random number generation.
//!
//! [`Rng`] is a Xoshiro256++ generator seeded through SplitMix64, the
//! construction recommended by the xoshiro authors. It is `Clone`, cheap,
//! and produces identical streams on every platform. [`Rng::split`]
//! derives statistically independent child streams, which the data
//! generator uses to give every domain / module its own stream so that
//! changing one component never perturbs another component's randomness.

/// Advance a SplitMix64 state and return the next output.
///
/// Used both for seeding Xoshiro and for [`Rng::split`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic Xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use mb_common::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is expanded with SplitMix64 so that similar seeds
    /// (0, 1, 2, ...) still yield well-separated states.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Derive an independent child generator keyed by `stream`.
    ///
    /// Two children with different stream ids, or children of different
    /// parents, produce unrelated sequences. The parent is not advanced.
    pub fn split(&self, stream: u64) -> Rng {
        // Mix the full parent state with the stream id through SplitMix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Snapshot the full generator state for checkpointing.
    ///
    /// Restoring via [`Rng::from_state`] resumes the stream exactly
    /// where it left off:
    ///
    /// ```
    /// use mb_common::Rng;
    /// let mut a = Rng::seed_from_u64(1);
    /// a.next_u64();
    /// let mut b = Rng::from_state(a.state());
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Rng::state`] snapshot.
    ///
    /// Intended for checkpoint restore only — for fresh generators use
    /// [`Rng::seed_from_u64`], which guarantees a well-mixed state (the
    /// all-zero state, for example, is a fixed point of Xoshiro256++
    /// and can never arise from seeding).
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Next raw 64-bit output (Xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: lo must be <= hi");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below called with n = 0");
        let n = n as u64;
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range requires lo < hi (got {lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the stream position simple).
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly pick a reference from a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.below(xs.len())]
    }

    /// Sample `k` distinct indices from `0..n` (Floyd's algorithm order is
    /// not needed here; we shuffle a prefix for simplicity and determinism).
    ///
    /// Returns fewer than `k` indices only if `k > n` (then all of `0..n`,
    /// shuffled).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Weighted choice: pick index `i` with probability `w[i] / Σw`.
    ///
    /// Weights must be non-negative and finite; if they sum to zero the
    /// draw falls back to uniform.
    ///
    /// # Panics
    /// Panics if `weights` is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "choose_weighted on empty weights");
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return self.below(weights.len());
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return i;
                }
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0).unwrap_or(weights.len() - 1)
    }

    /// Sample from a (truncated) geometric-ish length distribution in
    /// `[min_len, max_len]` with decay `p` — used for title/mention lengths.
    pub fn length(&mut self, min_len: usize, max_len: usize, p: f64) -> usize {
        let mut len = min_len;
        while len < max_len && self.chance(p) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn split_is_independent_and_stable() {
        let parent = Rng::seed_from_u64(3);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let mut c1_again = parent.split(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed_from_u64(13);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from_u64(19);
        let idx = r.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn sample_indices_caps_at_n() {
        let mut r = Rng::seed_from_u64(21);
        let idx = r.sample_indices(5, 30);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn choose_weighted_prefers_heavy() {
        let mut r = Rng::seed_from_u64(23);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn choose_weighted_zero_total_falls_back_to_uniform() {
        let mut r = Rng::seed_from_u64(25);
        let w = [0.0, 0.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[r.choose_weighted(&w)] += 1;
        }
        for &c in &counts {
            assert!(c > 700);
        }
    }

    #[test]
    fn length_respects_bounds() {
        let mut r = Rng::seed_from_u64(27);
        for _ in 0..1_000 {
            let l = r.length(1, 4, 0.5);
            assert!((1..=4).contains(&l));
        }
    }

    #[test]
    fn range_f64_bounds() {
        let mut r = Rng::seed_from_u64(29);
        for _ in 0..1_000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
