//! Lightweight opt-in progress/timing reporting for long experiments.
//!
//! The experiment harnesses run for minutes; [`Stopwatch`] provides
//! scoped timing and [`ProgressMeter`] coarse `eprintln!`-based progress
//! lines (no terminal control codes, so output composes with `tee` and
//! CI logs). Reporting is silent unless enabled, so library code can
//! instrument unconditionally.

use std::time::Instant;

/// A simple scoped stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    label: String,
    start: Instant,
}

impl Stopwatch {
    /// Start timing.
    pub fn start(label: impl Into<String>) -> Self {
        Stopwatch { label: label.into(), start: Instant::now() }
    }

    /// Elapsed seconds so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Print `label: N.NNs` to stderr and return the elapsed seconds.
    pub fn report(&self) -> f64 {
        let secs = self.elapsed_secs();
        eprintln!("{}: {secs:.2}s", self.label);
        secs
    }
}

/// Coarse progress meter: reports every `every` increments.
#[derive(Debug)]
pub struct ProgressMeter {
    label: String,
    total: usize,
    done: usize,
    every: usize,
    enabled: bool,
    start: Instant,
}

impl ProgressMeter {
    /// A meter over `total` units, reporting every `every` increments
    /// when `enabled`.
    pub fn new(label: impl Into<String>, total: usize, every: usize, enabled: bool) -> Self {
        ProgressMeter {
            label: label.into(),
            total,
            done: 0,
            every: every.max(1),
            enabled,
            start: Instant::now(),
        }
    }

    /// Record one completed unit.
    pub fn tick(&mut self) {
        self.done += 1;
        if self.enabled && (self.done.is_multiple_of(self.every) || self.done == self.total) {
            let rate = self.done as f64 / self.start.elapsed().as_secs_f64().max(1e-9);
            eprintln!("{}: {}/{} ({rate:.1}/s)", self.label, self.done, self.total);
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> usize {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start("test");
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.report() >= 0.0);
    }

    #[test]
    fn meter_counts_ticks() {
        let mut m = ProgressMeter::new("units", 5, 2, false);
        for _ in 0..5 {
            m.tick();
        }
        assert_eq!(m.done(), 5);
    }

    #[test]
    fn meter_with_zero_every_does_not_divide_by_zero() {
        let mut m = ProgressMeter::new("units", 3, 0, true);
        m.tick();
        assert_eq!(m.done(), 1);
    }
}
