//! A fixed-capacity least-recently-used cache.
//!
//! Used by the serving path to memoize mention embeddings: repeated
//! `(mention, context)` inputs skip the bi-encoder forward entirely.
//! Every operation is O(1): the recency order is a doubly-linked list
//! threaded through a slab of nodes, and the key → node mapping is a
//! `HashMap`. The cache also counts hits and misses so callers (the
//! `/metrics` endpoint) can report a hit rate without wrapping it.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a fixed capacity.
///
/// `get` refreshes recency; `put` inserts or updates, evicting the
/// least recently used entry when full. A capacity of 0 is allowed and
/// caches nothing (every lookup is a miss).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used node, or `NIL` when empty.
    head: usize,
    /// Least recently used node, or `NIL` when empty.
    tail: usize,
    /// Recycled slab slots from evictions (len == capacity reuse).
    free: Vec<usize>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Unlink node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Link node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.link_front(i);
                Some(&self.nodes[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without refreshing recency or counting (tests,
    /// introspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.nodes[i].value)
    }

    /// Insert or update `key`, making it the most recently used entry.
    /// Returns the evicted `(key, value)` pair, if the insert pushed
    /// one out.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let node = &mut self.nodes[lru];
            let old_key = node.key.clone();
            self.map.remove(&old_key);
            self.free.push(lru);
            // The value is swapped out below when the slot is reused.
            Some((lru, old_key))
        } else {
            None
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                let node = &mut self.nodes[slot];
                node.key = key.clone();
                let old_value = std::mem::replace(&mut node.value, value);
                self.map.insert(key, slot);
                self.link_front(slot);
                return evicted.map(|(_, k)| (k, old_value));
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
        debug_assert!(evicted.is_none(), "eviction always recycles a slot");
        None
    }

    /// Remove every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (tests, diagnostics).
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(&self.nodes[i].key);
            i = self.nodes[i].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert!(c.put(1, "a").is_none());
        assert!(c.put(2, "b").is_none());
        assert_eq!(c.get(&1), Some(&"a")); // refresh 1; 2 is now LRU
        assert_eq!(c.put(3, "c"), Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn update_refreshes_without_eviction() {
        let mut c = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert!(c.put(1, 11).is_none()); // update, no eviction
        assert_eq!(c.put(3, 30), Some((2, 20))); // 2 was LRU
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = LruCache::new(1);
        c.put("k", 1);
        c.get(&"k");
        c.get(&"absent");
        c.get(&"k");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert_eq!(c.put(1, "a"), Some((1, "a")));
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn recency_list_is_consistent() {
        let mut c = LruCache::new(3);
        for i in 0..10 {
            c.put(i, i);
        }
        assert_eq!(c.keys_by_recency(), vec![&9, &8, &7]);
        c.get(&8);
        assert_eq!(c.keys_by_recency(), vec![&8, &9, &7]);
        c.clear();
        assert!(c.is_empty());
        assert!(c.keys_by_recency().is_empty());
    }
}
