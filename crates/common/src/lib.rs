//! # mb-common
//!
//! Shared foundation for the metablink-rs workspace: a deterministic,
//! portable random number generator, error types, and small numeric
//! utilities used by every other crate.
//!
//! The RNG is implemented in-repo (SplitMix64 seeding + Xoshiro256++)
//! instead of depending on the `rand` crate so that every experiment in
//! the repository is bit-reproducible across platforms and dependency
//! versions — `rand`'s `StdRng` explicitly does not guarantee value
//! stability between releases, which would make the EXPERIMENTS.md
//! numbers unverifiable.

#![warn(missing_docs)]

pub mod error;
pub mod lru;
pub mod progress;
pub mod rng;
pub mod storage;
pub mod util;

pub use error::{Error, Result};
pub use lru::LruCache;
pub use rng::Rng;
