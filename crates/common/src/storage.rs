//! Durable storage with atomic writes, plus the fault-injection seams
//! (storage and step budget) used by the checkpoint/resume machinery.
//!
//! Everything that persists training state goes through the [`Storage`]
//! trait so that tests can substitute an in-memory backend or a
//! fault-injecting wrapper (see the `mb-fault` crate) without touching
//! the code under test. [`DiskStorage`] is the production backend: every
//! write goes to a temporary sibling file, is flushed with
//! `File::sync_all`, and is then renamed over the destination, so a
//! crash mid-write can never leave a half-written file under the final
//! name.

use crate::{Error, Result};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// CRC-32 (ISO-HDLC, the zlib/PNG polynomial) of a byte slice.
///
/// Used as the per-section integrity check of the `mb-params v2`
/// checkpoint format: any single-bit corruption of a protected payload
/// changes the checksum.
///
/// # Examples
///
/// ```
/// // Standard test vector: CRC-32("123456789") = 0xCBF43926.
/// assert_eq!(mb_common::storage::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// The reflected CRC-32 byte table (poly 0xEDB88320), built once at
/// compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 (reflected, poly 0xEDB88320) — the streaming
/// form of [`crc32`], for payloads too large to hold in memory (the
/// sharded entity store verifies multi-MB sections through a bounded
/// chunk buffer). Feeding the same bytes in any chunking produces the
/// same checksum as one [`crc32`] call.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb the next chunk.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            // mb-lint: allow(indexing) -- idx is masked to 0..=255 over a 256-entry table
            crc = (crc >> 8) ^ CRC32_TABLE[idx];
        }
        self.state = crc;
    }

    /// The checksum of everything absorbed so far (the hasher stays
    /// usable — `finish` does not consume it).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// Abstract byte storage with atomic replace semantics.
///
/// Paths are opaque keys; `DiskStorage` maps them to the filesystem,
/// `MemStorage` to a map. Methods take `&mut self` so wrappers can keep
/// deterministic fault counters.
pub trait Storage {
    /// Read the full contents stored under `path`.
    ///
    /// # Errors
    /// [`Error::Io`] if the entry does not exist or cannot be read.
    fn read(&mut self, path: &Path) -> Result<Vec<u8>>;

    /// Atomically replace the contents under `path` with `data`.
    ///
    /// After an `Ok` return the new contents are durable; after an error
    /// the previous contents (if any) are still intact.
    ///
    /// # Errors
    /// [`Error::Io`] on any I/O failure.
    fn write_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()>;

    /// True if an entry exists under `path`.
    fn exists(&mut self, path: &Path) -> bool;

    /// Remove the entry under `path` (ok if it is already gone).
    ///
    /// # Errors
    /// [`Error::Io`] on I/O failure other than absence.
    fn remove(&mut self, path: &Path) -> Result<()>;

    /// File names (not full paths) of the entries directly under `dir`,
    /// sorted ascending. An absent directory lists as empty.
    ///
    /// # Errors
    /// [`Error::Io`] on I/O failure.
    fn list(&mut self, dir: &Path) -> Result<Vec<String>>;
}

/// Filesystem-backed [`Storage`] with write-temp + fsync + rename.
#[derive(Debug, Clone, Default)]
pub struct DiskStorage;

impl DiskStorage {
    /// A new disk storage handle.
    pub fn new() -> Self {
        DiskStorage
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{what} {}: {e}", path.display()))
}

impl Storage for DiskStorage {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| io_err("reading", path, e))
    }

    fn write_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()> {
        atomic_write(path, data)
    }

    fn exists(&mut self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&mut self, path: &Path) -> Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("removing", path, e)),
        }
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(es) => es,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err("listing", dir, e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", dir, e))?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

/// Write `data` to `path` atomically: write a temporary sibling, flush
/// it to disk, then rename it over the destination. Readers never see a
/// torn file under `path`; a crash leaves at worst a stale `.tmp`
/// sibling.
///
/// # Errors
/// [`Error::Io`] on any I/O failure; the previous contents of `path`
/// are untouched in that case.
pub fn atomic_write(path: &Path, data: &[u8]) -> Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
    f.write_all(data).map_err(|e| io_err("writing", &tmp, e))?;
    // fsync so the rename cannot land before the data does.
    f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err("renaming", &tmp, e))
}

/// In-memory [`Storage`] for tests. Cloning shares the underlying map,
/// so a "restarted" component handed a clone sees everything previous
/// writers persisted — mirroring a process restart over a real disk.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: std::rc::Rc<std::cell::RefCell<BTreeMap<PathBuf, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.files.borrow().len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }

    /// Overwrite raw bytes directly (test helper for corrupting state
    /// behind the back of the code under test).
    pub fn poke(&self, path: &Path, data: Vec<u8>) {
        self.files.borrow_mut().insert(path.to_path_buf(), data);
    }

    /// Read raw bytes directly without going through the trait.
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.borrow().get(path).cloned()
    }
}

impl Storage for MemStorage {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>> {
        self.files
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::Io(format!("reading {}: no such entry", path.display())))
    }

    fn write_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()> {
        self.files.borrow_mut().insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn exists(&mut self, path: &Path) -> bool {
        self.files.borrow().contains_key(path)
    }

    fn remove(&mut self, path: &Path) -> Result<()> {
        self.files.borrow_mut().remove(path);
        Ok(())
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>> {
        let files = self.files.borrow();
        let mut names: Vec<String> = files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }
}

/// A budget of training work, ticked once per unit of progress (an
/// epoch, a meta step, a stage boundary).
///
/// This is the crash-injection seam: training loops call
/// [`StepBudget::tick`] before each unit of work, and an implementation
/// may return an error to abort the run exactly as if the process had
/// died there — everything not yet checkpointed is lost. The `mb-fault`
/// crate provides deterministic kill-at-step-N implementations; real
/// runs use [`NoBudget`].
pub trait StepBudget {
    /// Account one unit of work.
    ///
    /// # Errors
    /// [`Error::Aborted`] (by convention) when the budget is exhausted
    /// and the run must stop as if killed.
    fn tick(&mut self) -> Result<()>;
}

/// The production budget: never aborts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBudget;

impl StepBudget for NoBudget {
    fn tick(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_streaming_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 3, 64, 1000, 4096] {
            let mut h = Crc32::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finish(), whole, "chunk size {chunk}");
        }
        // finish() is non-consuming: absorbing more afterwards continues.
        let mut h = Crc32::new();
        h.update(b"1234");
        let _ = h.finish();
        h.update(b"56789");
        assert_eq!(h.finish(), 0xCBF4_3926);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"mb-params v2 payload bytes".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn disk_storage_round_trip_and_list() {
        let dir = std::env::temp_dir().join(format!("mb_storage_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut s = DiskStorage::new();
        let path = dir.join("a.bin");
        assert!(!s.exists(&path));
        s.write_atomic(&path, b"hello").unwrap();
        assert!(s.exists(&path));
        assert_eq!(s.read(&path).unwrap(), b"hello");
        s.write_atomic(&path, b"replaced").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"replaced");
        s.write_atomic(&dir.join("b.bin"), b"x").unwrap();
        assert_eq!(s.list(&dir).unwrap(), vec!["a.bin".to_string(), "b.bin".to_string()]);
        s.remove(&path).unwrap();
        assert!(!s.exists(&path));
        s.remove(&path).unwrap(); // idempotent
        assert!(s.read(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_leaves_no_temp_behind() {
        let dir = std::env::temp_dir().join(format!("mb_storage_tmp_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("ckpt.mbc");
        atomic_write(&path, b"data").unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["ckpt.mbc".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_storage_clones_share_state() {
        let mut a = MemStorage::new();
        let mut b = a.clone();
        let p = Path::new("dir/x");
        a.write_atomic(p, b"1").unwrap();
        assert_eq!(b.read(p).unwrap(), b"1");
        assert_eq!(b.list(Path::new("dir")).unwrap(), vec!["x".to_string()]);
        b.remove(p).unwrap();
        assert!(!a.exists(p));
    }

    #[test]
    fn no_budget_never_aborts() {
        let mut b = NoBudget;
        for _ in 0..1000 {
            assert!(b.tick().is_ok());
        }
    }
}
