//! # mb-par
//!
//! A deterministic, zero-dependency data-parallel runtime built on
//! scoped threads (DESIGN.md §11).
//!
//! ## The determinism contract
//!
//! Every entry point produces **bit-identical results for any worker
//! count**, which is what lets the rest of the workspace parallelise
//! hot paths without giving up the bit-identical resume/replay
//! guarantee the determinism lint family protects:
//!
//! - **Static partitioning.** Work is split by *index*, never by a
//!   work-stealing queue. Chunk boundaries depend only on the input
//!   length (and an explicit chunk size), never on the worker count or
//!   on runtime timing.
//! - **Ordered results.** Per-item and per-chunk results are written
//!   into their input slot, so the output order is the input order no
//!   matter which worker computed what.
//! - **Ordered reduction.** [`par_reduce`] merges chunk partials along
//!   a fixed pairwise tree over chunk indices. The tree shape depends
//!   only on the chunk count, so floating-point merges associate
//!   identically at every thread count.
//! - **No ambient state.** The worker count is an explicit [`Threads`]
//!   value plumbed from configuration (CLI `--threads` / `MB_THREADS`,
//!   read only at the binary edge). Nothing here consults
//!   `std::env`, CPU counts, or clocks.
//!
//! ## Panics
//!
//! A panicking worker never deadlocks or poisons a pool: the infallible
//! entry points re-raise the first panic (by worker index) on the
//! calling thread after all workers have stopped; [`try_par_map`]
//! instead converts it into [`enum@mb_common::Error::Worker`] so shard
//! failures surface as recoverable errors.

#![warn(missing_docs)]

use mb_common::{Error, Result};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread;

/// An explicit worker count for the data-parallel entry points.
///
/// Constructed from configuration at the binary edge and passed down —
/// never discovered from the environment inside library code, so the
/// mb-lint determinism family stays clean. `Threads(1)` (the default)
/// runs everything inline on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// A worker count of `n`, clamped to at least 1.
    pub fn new(n: usize) -> Threads {
        Threads(n.max(1))
    }

    /// The single-threaded (inline) configuration.
    pub fn single() -> Threads {
        Threads(1)
    }

    /// The configured worker count (always ≥ 1).
    pub fn get(self) -> usize {
        self.0
    }

    /// True if work runs inline on the calling thread.
    pub fn is_single(self) -> bool {
        self.0 == 1
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads(1)
    }
}

/// Render a panic payload as a message, preserving `&str` / `String`
/// payloads (the overwhelmingly common case from `panic!` / `assert!`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Shared core: compute `f(0..n)` into an index-ordered vector using a
/// static contiguous partition over at most `threads` workers. Returns
/// the first panic payload (lowest worker index) if any worker
/// panicked.
fn run_indexed<R, F>(threads: Threads, n: usize, f: &F) -> std::result::Result<Vec<R>, PanicPayload>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.get().min(n.max(1));
    if workers <= 1 {
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(f).collect()));
    }
    // Contiguous slices of ceil(n / workers) indices per worker. The
    // partition affects only *which thread* computes a slot, never the
    // value written into it, so any worker count yields the same vector.
    let per = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let first_panic = thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(per)
            .enumerate()
            .map(|(wi, slots)| {
                let start = wi * per;
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            *slot = Some(f(start + off));
                        }
                    }))
                })
            })
            .collect();
        let mut first: Option<PanicPayload> = None;
        for h in handles {
            let payload = match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(p)) => Some(p),
                Err(p) => Some(p),
            };
            if first.is_none() {
                first = payload;
            }
        }
        first
    });
    match first_panic {
        Some(p) => Err(p),
        None => Ok(out
            .into_iter()
            .map(|slot| slot.expect("mb-par: worker finished without filling its slot"))
            .collect()),
    }
}

/// Map `f` over `0..n` in parallel; results come back in index order.
///
/// Bit-identical for any [`Threads`] value. A worker panic is re-raised
/// on the calling thread after every worker has stopped.
pub fn par_map_range<R, F>(threads: Threads, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Panic transparency is this API's contract: a worker panic
    // re-raises on the caller with its own payload, and with no worker
    // panic every slot is filled, so the unfilled-slot expect inside
    // run_indexed is unreachable.
    // mb-lint: allow(panic-reach) -- panic transparency is the documented contract here
    match run_indexed(threads, n, &f) {
        Ok(v) => v,
        Err(p) => resume_unwind(p),
    }
}

/// Map `f` over the items of a slice in parallel; results come back in
/// input order. See [`par_map_range`] for the determinism and panic
/// contract.
pub fn par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(threads, items.len(), |i| f(i, &items[i]))
}

/// Fallible [`par_map`]: a panicking worker surfaces as
/// [`enum@mb_common::Error::Worker`] (carrying the panic message)
/// instead of re-panicking on the calling thread. All workers run to
/// completion or panic before this returns.
pub fn try_par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // mb-lint: allow(panic-reach) -- worker panics become a typed Error::Worker right here
    match run_indexed(threads, items.len(), &|i| f(i, &items[i])) {
        Ok(v) => Ok(v),
        Err(p) => Err(Error::Worker(panic_message(p.as_ref()))),
    }
}

/// The number of `chunk`-sized pieces a `len`-item input splits into —
/// a pure function of the data size, never of the worker count.
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "mb-par: chunk size must be positive");
    len.div_ceil(chunk)
}

/// Map `f` over fixed-size chunks of a slice in parallel. `f` receives
/// the chunk index and the chunk (the final chunk may be short);
/// results come back in chunk order.
///
/// The chunk size is an explicit parameter precisely so partitioning is
/// a function of the data, not of the worker count: callers pick a
/// granularity once and results are bit-identical at any thread count.
pub fn par_chunks<T, R, F>(threads: Threads, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n = chunk_count(items.len(), chunk);
    par_map_range(threads, n, |ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(items.len());
        f(ci, &items[lo..hi])
    })
}

/// Map `f` over fixed-size consecutive index ranges of `0..n` in
/// parallel. `f` receives the chunk index and the `lo..hi` range (the
/// final range may be short); results come back in range order.
///
/// This is [`par_chunks`] for callers that index into several parallel
/// arrays (e.g. a quantized table plus its per-row scales) rather than
/// one slice. As there, partitioning is a function of `n` and `chunk`
/// alone, so results are bit-identical at any thread count.
pub fn par_chunk_ranges<R, F>(threads: Threads, n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let pieces = chunk_count(n, chunk);
    par_map_range(threads, pieces, |ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        f(ci, lo..hi)
    })
}

/// [`par_chunks`] with panic containment: a panicking chunk surfaces as
/// [`enum@mb_common::Error::Worker`] at the fork point instead of
/// re-panicking on the calling thread.
pub fn try_par_chunks<T, R, F>(threads: Threads, items: &[T], chunk: usize, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n = chunk_count(items.len(), chunk);
    // mb-lint: allow(panic-reach) -- worker panics become a typed Error::Worker below
    match run_indexed(threads, n, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(items.len());
        f(ci, &items[lo..hi])
    }) {
        Ok(v) => Ok(v),
        Err(p) => Err(Error::Worker(panic_message(p.as_ref()))),
    }
}

/// Run `f` over disjoint fixed-size mutable chunks of `data` in
/// parallel. `f` receives the chunk index and the chunk; each chunk is
/// visited exactly once.
///
/// Workers own contiguous *groups* of chunks, so the mutable split is
/// expressible entirely in safe code; as with [`par_chunks`], which
/// worker touches a chunk never affects what is written into it.
pub fn par_chunks_mut<T, F>(threads: Threads, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let nchunks = chunk_count(data.len(), chunk);
    let workers = threads.get().min(nchunks.max(1));
    if workers <= 1 {
        for (ci, c) in data.chunks_mut(chunk).enumerate() {
            f(ci, c);
        }
        return;
    }
    let per = nchunks.div_ceil(workers);
    let f = &f;
    let first_panic = thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks_mut(per * chunk)
            .enumerate()
            .map(|(wi, group)| {
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        for (off, c) in group.chunks_mut(chunk).enumerate() {
                            f(wi * per + off, c);
                        }
                    }))
                })
            })
            .collect();
        let mut first: Option<PanicPayload> = None;
        for h in handles {
            let payload = match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(p)) => Some(p),
                Err(p) => Some(p),
            };
            if first.is_none() {
                first = payload;
            }
        }
        first
    });
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
}

/// Ordered tree reduction: map fixed-size chunks to partial values in
/// parallel, then merge the partials along a pairwise tree over chunk
/// indices — level by level, `(0,1) (2,3) …` — until one value remains.
/// Returns `None` for an empty input.
///
/// The tree shape is a pure function of the chunk count, so
/// floating-point merges associate identically at every thread count.
/// `merge` must not depend on evaluation order beyond its arguments
/// (it is called as `merge(left, right)` with `left` always the
/// lower-index partial).
pub fn par_reduce<T, A, F, M>(
    threads: Threads,
    items: &[T],
    chunk: usize,
    map: F,
    merge: M,
) -> Option<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    M: Fn(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let mut partials = par_chunks(threads, items, chunk, map);
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge(a, b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    partials.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 4, 7];

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for t in THREAD_COUNTS {
            let got = par_map(Threads::new(t), &items, |_, &x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn map_range_handles_empty_and_tiny() {
        for t in THREAD_COUNTS {
            assert_eq!(par_map_range(Threads::new(t), 0, |i| i), Vec::<usize>::new());
            assert_eq!(par_map_range(Threads::new(t), 1, |i| i * 2), vec![0]);
        }
    }

    #[test]
    fn chunk_ranges_partition_identically_at_every_thread_count() {
        let expect: Vec<(usize, usize, usize)> =
            vec![(0, 0, 7), (1, 7, 14), (2, 14, 21), (3, 21, 23)];
        for t in THREAD_COUNTS {
            let got = par_chunk_ranges(Threads::new(t), 23, 7, |ci, r| (ci, r.start, r.end));
            assert_eq!(got, expect, "threads={t}");
        }
        for t in THREAD_COUNTS {
            assert!(par_chunk_ranges(Threads::new(t), 0, 8, |_, r| r.len()).is_empty());
        }
    }

    #[test]
    fn chunks_sees_every_chunk_once_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for t in THREAD_COUNTS {
            let got = par_chunks(Threads::new(t), &items, 7, |ci, c| (ci, c.to_vec()));
            assert_eq!(got.len(), 15);
            for (ci, (gci, c)) in got.iter().enumerate() {
                assert_eq!(ci, *gci);
                let lo = ci * 7;
                let hi = (lo + 7).min(100);
                assert_eq!(c, &items[lo..hi]);
            }
        }
    }

    #[test]
    fn chunks_mut_writes_every_slot_exactly_once() {
        for t in THREAD_COUNTS {
            let mut data = vec![0u32; 101];
            par_chunks_mut(Threads::new(t), &mut data, 8, |ci, c| {
                for x in c.iter_mut() {
                    *x += 1 + ci as u32;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, 1 + (i / 8) as u32, "slot {i} threads={t}");
            }
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // Adversarial magnitudes: re-associating this sum changes bits.
        let data: Vec<f64> = (0..1000)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (1.0 + i as f64 * 1e-3) * 10f64.powi(i % 31 - 15)
            })
            .collect();
        let reference =
            par_reduce(Threads::single(), &data, 16, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
                .unwrap();
        for t in THREAD_COUNTS {
            let got =
                par_reduce(Threads::new(t), &data, 16, |_, c| c.iter().sum::<f64>(), |a, b| a + b)
                    .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn reduce_empty_is_none_and_single_chunk_is_map() {
        let empty: [f64; 0] = [];
        assert!(par_reduce(Threads::new(4), &empty, 4, |_, c| c.len(), |a, b| a + b).is_none());
        let one = [1.5f64, 2.5];
        let got = par_reduce(Threads::new(4), &one, 10, |_, c| c.iter().sum::<f64>(), |a, b| a + b);
        assert_eq!(got, Some(4.0));
    }

    #[test]
    fn try_map_converts_worker_panic_into_error() {
        let items: Vec<usize> = (0..50).collect();
        let err = try_par_map(Threads::new(4), &items, |_, &x| {
            assert!(x != 33, "shard poisoned at {x}");
            x * 2
        })
        .unwrap_err();
        match err {
            Error::Worker(msg) => assert!(msg.contains("shard poisoned at 33"), "{msg}"),
            other => panic!("expected Error::Worker, got {other:?}"),
        }
    }

    #[test]
    fn try_map_ok_path_matches_serial() {
        let items: Vec<usize> = (0..50).collect();
        let got = try_par_map(Threads::new(3), &items, |_, &x| x * 2).unwrap();
        let expect: Vec<usize> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn infallible_map_repropagates_panic() {
        let items: Vec<usize> = (0..10).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(Threads::new(2), &items, |_, &x| {
                assert!(x != 7, "boom {x}");
                x
            })
        });
        let payload = caught.unwrap_err();
        assert!(panic_message(payload.as_ref()).contains("boom 7"));
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1, 2, 3];
        let got = par_map(Threads::new(64), &items, |_, &x| x * x);
        assert_eq!(got, vec![1, 4, 9]);
    }
}
