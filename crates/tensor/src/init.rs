//! Parameter initialisation schemes.

use crate::tensor::Tensor;
use mb_common::Rng;

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]`
/// weight matrix: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.range_f64(-limit, limit)).collect();
    Tensor::from_vec(vec![fan_in, fan_out], data)
}

/// He/Kaiming normal initialisation, for ReLU layers.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in as f64).sqrt();
    Tensor::randn(vec![fan_in, fan_out], 0.0, std, rng)
}

/// Embedding-table initialisation: `N(0, 1/√dim)` per element, giving
/// token vectors of roughly unit expected norm.
pub fn embedding(vocab: usize, dim: usize, rng: &mut Rng) -> Tensor {
    let std = 1.0 / (dim as f64).sqrt();
    Tensor::randn(vec![vocab, dim], 0.0, std, rng)
}

/// Zero bias vector.
pub fn zeros_bias(dim: usize) -> Tensor {
    Tensor::zeros(vec![dim])
}

/// Near-identity initialisation: `scale·I` plus small uniform noise.
/// Used to start encoder heads as (approximate) identity maps, so an
/// untrained encoder over a shared embedding table already behaves as
/// a bag-of-words matcher — the substrate's stand-in for a pretrained
/// language model's transferable representations.
///
/// # Panics
/// Panics unless the matrix is square.
pub fn near_identity(dim: usize, scale: f64, noise: f64, rng: &mut Rng) -> Tensor {
    let mut t = Tensor::zeros(vec![dim, dim]);
    for i in 0..dim {
        for j in 0..dim {
            let base = if i == j { scale } else { 0.0 };
            *t.at_mut(i, j) = base + rng.range_f64(-noise, noise);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_and_shape() {
        let mut rng = Rng::seed_from_u64(1);
        let w = xavier_uniform(30, 20, &mut rng);
        assert_eq!(w.shape(), &[30, 20]);
        let limit = (6.0 / 50.0_f64).sqrt();
        assert!(w.data().iter().all(|x| x.abs() <= limit));
        // Non-degenerate.
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = Rng::seed_from_u64(2);
        let w = he_normal(1000, 50, &mut rng);
        let var = w.data().iter().map(|x| x * x).sum::<f64>() / w.numel() as f64;
        assert!((var - 2.0 / 1000.0).abs() < 5e-4, "var {var}");
    }

    #[test]
    fn embedding_rows_near_unit_norm() {
        let mut rng = Rng::seed_from_u64(3);
        let e = embedding(200, 64, &mut rng);
        let mean_norm: f64 =
            (0..200).map(|i| e.row(i).iter().map(|x| x * x).sum::<f64>().sqrt()).sum::<f64>()
                / 200.0;
        assert!((mean_norm - 1.0).abs() < 0.1, "mean row norm {mean_norm}");
    }

    #[test]
    fn zeros_bias_is_zero() {
        let b = zeros_bias(7);
        assert_eq!(b.shape(), &[7]);
        assert!(b.data().iter().all(|&x| x == 0.0));
    }
}
