//! Tape-free forward-only inference over frozen parameters.
//!
//! The training forward injects every parameter tensor — embedding
//! tables included — into a fresh [`crate::Tape`] per batch
//! (`Params::inject` clones each tensor into a leaf node), which is
//! pure overhead when no gradient will ever be taken. This module is
//! the serving-side alternative: an immutable [`FrozenParams`]
//! snapshot shared via [`Arc`] (zero per-forward clones, zero
//! allocations beyond the activations) plus free-function forward ops.
//!
//! ## Bit-identity contract
//!
//! Every op here reproduces the arithmetic of the corresponding
//! [`crate::Tape`] op **verbatim** — same kernels, same accumulation
//! order, same broadcast loops — so a frozen forward is bit-identical
//! to the tape forward at any thread count. The unit tests below and
//! the `tests/proptest_frozen.rs` property suite pin that equivalence;
//! the `tape-free` mb-lint rule keeps tape construction and parameter
//! cloning out of the serving path statically.

use crate::params::{ParamId, Params};
use crate::tensor::Tensor;
use mb_par::Threads;
use std::sync::Arc;

/// An immutable, cheaply shareable snapshot of a [`Params`] set.
///
/// Freezing clones each parameter tensor exactly once; afterwards
/// every handle (worker threads, linkers, benches) is an `Arc` bump.
/// Tensors keep their [`ParamId`] indices, so ids minted by the source
/// `Params` resolve unchanged.
#[derive(Debug, Clone)]
pub struct FrozenParams {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl FrozenParams {
    /// Snapshot `params`: the single clone of the model's lifetime.
    pub fn freeze(params: &Params) -> Self {
        let (names, tensors) = params.iter().map(|(n, t)| (n.to_string(), t.clone())).unzip();
        FrozenParams { inner: Arc::new(Inner { names, tensors }) }
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.inner.tensors.len()
    }

    /// True when the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.inner.tensors.is_empty()
    }

    /// Total number of scalar elements across all tensors.
    pub fn numel(&self) -> usize {
        self.inner.tensors.iter().map(Tensor::numel).sum()
    }

    /// The tensor a [`ParamId`] resolves to (same index as in the
    /// source [`Params`]).
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.inner.tensors[id.index()]
    }

    /// Name/tensor pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.inner.names.iter().map(String::as_str).zip(self.inner.tensors.iter())
    }

    /// True when both handles point at one shared snapshot (no copy
    /// happened between them).
    pub fn shares_storage(&self, other: &FrozenParams) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Forward-only affine map `x @ w + b` (bias broadcast over rows);
/// bit-identical to the tape's `linear`.
///
/// # Panics
/// Panics unless `x: [n, f]`, `w: [f, o]`, `b: [o]`.
pub fn linear(x: &Tensor, w: &Tensor, b: &Tensor, threads: Threads) -> Tensor {
    assert_eq!(b.rank(), 1, "linear: bias must be rank-1, got {:?}", b.shape());
    assert_eq!(w.shape()[1], b.shape()[0], "linear: w {:?} vs b {:?}", w.shape(), b.shape());
    let mut y = x.matmul_with(w, threads);
    let o = b.shape()[0];
    for i in 0..y.rows() {
        for (yj, bj) in y.row_mut(i).iter_mut().zip(&b.data()[..o]) {
            *yj += *bj;
        }
    }
    y
}

/// Forward-only elementwise hyperbolic tangent; bit-identical to the
/// tape's `tanh`.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f64::tanh)
}

/// Forward-only row-wise L2 normalisation (each row divided by
/// `max(‖row‖₂, eps)`); bit-identical to the tape's
/// `row_l2_normalize`.
pub fn row_l2_normalize(x: &Tensor, eps: f64) -> Tensor {
    assert_eq!(x.rank(), 2, "row_l2_normalize: rank-2 required, got {:?}", x.shape());
    let mut y = x.clone();
    for i in 0..y.rows() {
        let row = y.row_mut(i);
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(eps);
        for v in row {
            *v /= norm;
        }
    }
    y
}

/// Forward-only mean-pooled embedding-bag lookup over a `[vocab, dim]`
/// table; bit-identical to the tape's `bag_embed`. Empty bags yield
/// zero rows.
///
/// # Panics
/// Panics if any id is out of range.
pub fn bag_embed(table: &Tensor, bags: &[Vec<u32>]) -> Tensor {
    assert_eq!(table.rank(), 2, "bag_embed: table must be rank-2, got {:?}", table.shape());
    let (vocab, dim) = (table.shape()[0], table.shape()[1]);
    let mut out = Tensor::zeros(vec![bags.len(), dim]);
    for (i, bag) in bags.iter().enumerate() {
        if bag.is_empty() {
            continue;
        }
        let inv = 1.0 / bag.len() as f64;
        let row = out.row_mut(i);
        for &id in bag {
            let id = id as usize;
            assert!(id < vocab, "bag_embed: token id {id} out of vocab {vocab}");
            let emb = &table.data()[id * dim..(id + 1) * dim];
            for (r, e) in row.iter_mut().zip(emb) {
                *r += inv * e;
            }
        }
    }
    out
}

/// Forward-only row-wise dot product of two `[n, d]` tensors → `[n]`;
/// bit-identical to the tape's `rows_dot`.
pub fn rows_dot(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "rows_dot: {:?} vs {:?}", a.shape(), b.shape());
    assert_eq!(a.rank(), 2, "rows_dot: rank-2 required");
    let n = a.rows();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        *o = a.row(i).iter().zip(b.row(i)).map(|(x, y)| x * y).sum();
    }
    Tensor::from_vec(vec![n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use mb_common::Rng;

    fn assert_bits_eq(got: &Tensor, want: &Tensor) {
        assert_eq!(got.shape(), want.shape());
        for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn frozen_params_share_storage_and_keep_ids() {
        let mut rng = Rng::seed_from_u64(7);
        let mut params = Params::default();
        let a = params.add("emb", Tensor::randn(vec![10, 4], 0.0, 1.0, &mut rng));
        let b = params.add("w", Tensor::randn(vec![4, 4], 0.0, 1.0, &mut rng));
        let frozen = FrozenParams::freeze(&params);
        assert_eq!(frozen.len(), 2);
        assert!(!frozen.is_empty());
        assert_eq!(frozen.numel(), params.numel());
        assert_bits_eq(frozen.get(a), params.get(a));
        assert_bits_eq(frozen.get(b), params.get(b));
        assert_eq!(frozen.iter().map(|(n, _)| n).collect::<Vec<_>>(), vec!["emb", "w"]);
        let handle = frozen.clone();
        assert!(handle.shares_storage(&frozen));
        assert!(!FrozenParams::freeze(&params).shares_storage(&frozen));
    }

    #[test]
    fn linear_is_bit_identical_to_tape() {
        let mut rng = Rng::seed_from_u64(11);
        let x = Tensor::randn(vec![7, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(vec![5, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(vec![3], 0.0, 1.0, &mut rng);
        for t in [1usize, 2, 4] {
            let threads = mb_par::Threads::new(t);
            let mut tape = Tape::with_threads(threads);
            let (xv, wv, bv) = (tape.leaf(x.clone()), tape.leaf(w.clone()), tape.leaf(b.clone()));
            let out = tape.linear(xv, wv, bv);
            let want = tape.value(out).clone();
            assert_bits_eq(&linear(&x, &w, &b, threads), &want);
        }
    }

    #[test]
    fn pointwise_ops_are_bit_identical_to_tape() {
        let mut rng = Rng::seed_from_u64(13);
        let mut x = Tensor::randn(vec![6, 8], 0.0, 2.0, &mut rng);
        // An all-zero row exercises the eps branch of the normaliser.
        for v in x.row_mut(2) {
            *v = 0.0;
        }
        let y = Tensor::randn(vec![6, 8], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let yv = tape.leaf(y.clone());
        let (th, no, dt) = (tape.tanh(xv), tape.row_l2_normalize(xv, 1e-9), tape.rows_dot(xv, yv));
        let want_tanh = tape.value(th).clone();
        let want_norm = tape.value(no).clone();
        let want_dot = tape.value(dt).clone();
        assert_bits_eq(&tanh(&x), &want_tanh);
        assert_bits_eq(&row_l2_normalize(&x, 1e-9), &want_norm);
        assert_bits_eq(&rows_dot(&x, &y), &want_dot);
    }

    #[test]
    fn bag_embed_is_bit_identical_to_tape() {
        let mut rng = Rng::seed_from_u64(17);
        let table = Tensor::randn(vec![12, 4], 0.0, 1.0, &mut rng);
        // Repeated ids, an empty bag, and singleton bags.
        let bags: Vec<Vec<u32>> = vec![vec![0, 3, 3, 11], vec![], vec![5], vec![2, 1, 0]];
        let mut tape = Tape::new();
        let tv = tape.leaf(table.clone());
        let bv = tape.bag_embed(tv, bags.clone());
        let want = tape.value(bv).clone();
        assert_bits_eq(&bag_embed(&table, &bags), &want);
    }
}
