//! Sectioned `mb-params v2` checkpoint format with per-section CRCs.
//!
//! A v2 checkpoint bundles everything needed to resume a training run
//! bit-identically after a crash: model parameters (one [`Params`] per
//! model), optimizer moments ([`OptimState`]), captured RNG streams
//! (`mb_common::Rng` state words), accumulated metric vectors, and a
//! free-form string map for the pipeline-stage cursor.
//!
//! ```text
//! mb-params v2 <nsections>
//! section <name> <len> <crc32>
//! <exactly len payload bytes>
//! section <name> <len> <crc32>
//! ...
//! ```
//!
//! Integrity model: the magic line carries the section count, so
//! truncation at a section boundary is detected; each section header
//! carries the payload byte length, so truncation inside a section is
//! detected; and the CRC-32 is computed over `name + '\n' + payload`,
//! so any single-bit corruption of either the section name or its
//! payload is detected. A corrupted checkpoint never loads partially —
//! [`Checkpoint::from_bytes`] is all-or-nothing, and the checkpoint
//! manager in `mb-core` falls back to the previous good generation.
//!
//! Legacy `mb-params v1` documents (bare parameter files from
//! [`crate::serialize`]) still load, as a params-only checkpoint under
//! the key `"model"`.

use crate::optim::OptimState;
use crate::params::Params;
use crate::serialize;
use crate::tensor::Tensor;
use mb_common::storage::{crc32, Storage};
use mb_common::{Error, Result};
use std::collections::BTreeMap;
use std::path::Path;

const MAGIC_V2: &str = "mb-params v2";
const MAGIC_V1: &str = "mb-params v1";

/// Key under which a legacy v1 document's parameters appear after
/// loading through [`Checkpoint::from_bytes`].
pub const V1_PARAMS_KEY: &str = "model";

/// A complete training-state snapshot.
///
/// Keys in every map are free-form identifiers chosen by the caller
/// (e.g. `"bi"` and `"cross"` for the two encoders); they must be
/// non-empty and contain no whitespace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Model parameters per model key.
    pub params: BTreeMap<String, Params>,
    /// Optimizer state per optimizer key.
    pub optim: BTreeMap<String, OptimState>,
    /// Captured RNG stream state per stream key.
    pub rng: BTreeMap<String, [u64; 4]>,
    /// Accumulated numeric series (losses, counters) per key.
    pub vectors: BTreeMap<String, Vec<f64>>,
    /// Free-form metadata: stage cursor, step counters, config echo.
    /// Keys must contain no whitespace; values no newlines.
    pub meta: BTreeMap<String, String>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Serialize to the v2 byte format.
    ///
    /// # Errors
    /// [`Error::Diverged`] if any parameter tensor holds non-finite
    /// values; [`Error::Checkpoint`] if a key is empty or contains
    /// whitespace, or a meta value contains a newline.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut sections: Vec<(String, String)> = Vec::new();
        let mut meta_payload = String::new();
        for (k, v) in &self.meta {
            check_key(k)?;
            if v.contains('\n') {
                return Err(Error::Checkpoint(format!("meta value for {k:?} contains newline")));
            }
            meta_payload.push_str(k);
            meta_payload.push(' ');
            meta_payload.push_str(v);
            meta_payload.push('\n');
        }
        sections.push(("meta".to_string(), meta_payload));
        for (k, p) in &self.params {
            check_key(k)?;
            let mut body = String::new();
            serialize::write_params_body(p, &mut body)?;
            sections.push((format!("params/{k}"), body));
        }
        for (k, s) in &self.optim {
            check_key(k)?;
            sections.push((format!("optim/{k}"), encode_optim(s)));
        }
        for (k, s) in &self.rng {
            check_key(k)?;
            // mb-lint: allow(indexing) -- s is a fixed-size [u64; 4] rng state
            sections.push((format!("rng/{k}"), format!("{} {} {} {}\n", s[0], s[1], s[2], s[3])));
        }
        for (k, v) in &self.vectors {
            check_key(k)?;
            let mut payload = String::new();
            for (i, x) in v.iter().enumerate() {
                if i > 0 {
                    payload.push(' ');
                }
                payload.push_str(&format!("{x:.17e}"));
            }
            if !v.is_empty() {
                payload.push('\n');
            }
            sections.push((format!("vec/{k}"), payload));
        }
        let mut out = format!("{MAGIC_V2} {}\n", sections.len()).into_bytes();
        for (name, payload) in &sections {
            let mut protected = name.as_bytes().to_vec();
            protected.push(b'\n');
            protected.extend_from_slice(payload.as_bytes());
            let crc = crc32(&protected);
            out.extend_from_slice(
                format!("section {name} {} {crc:08x}\n", payload.len()).as_bytes(),
            );
            out.extend_from_slice(payload.as_bytes());
            out.push(b'\n');
        }
        Ok(out)
    }

    /// Parse a checkpoint from bytes, verifying framing and CRCs.
    ///
    /// Accepts both v2 documents and legacy `mb-params v1` parameter
    /// files (loaded under [`V1_PARAMS_KEY`]).
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on truncation, corruption, or any framing
    /// problem; [`Error::Parse`] if a CRC-valid payload fails to decode
    /// (which indicates a writer bug, not storage corruption).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        let mut pos = 0usize;
        let magic = read_line(bytes, &mut pos)?;
        if magic.trim() == MAGIC_V1 {
            let s = std::str::from_utf8(bytes)
                .map_err(|_| Error::Checkpoint("v1 checkpoint is not UTF-8".into()))?;
            let params = serialize::from_string(s)?;
            let mut ck = Checkpoint::new();
            ck.params.insert(V1_PARAMS_KEY.to_string(), params);
            return Ok(ck);
        }
        let mut head = magic.split_whitespace();
        let magic_ok = head.next() == Some("mb-params") && head.next() == Some("v2");
        if !magic_ok {
            return Err(Error::Checkpoint(format!("bad magic line {magic:?}")));
        }
        let nsections: usize = head
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::Checkpoint(format!("bad section count in {magic:?}")))?;
        if head.next().is_some() {
            return Err(Error::Checkpoint(format!("trailing tokens in magic line {magic:?}")));
        }
        let mut ck = Checkpoint::new();
        for i in 0..nsections {
            let header = read_line(bytes, &mut pos)
                .map_err(|_| Error::Checkpoint(format!("truncated before section {i}")))?;
            let mut parts = header.split_whitespace();
            if parts.next() != Some("section") {
                return Err(Error::Checkpoint(format!("bad section header {header:?}")));
            }
            let name = parts
                .next()
                .ok_or_else(|| Error::Checkpoint(format!("section header {header:?} lacks name")))?
                .to_string();
            let len: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Checkpoint(format!("bad length in {header:?}")))?;
            // Strict canonical form: exactly 8 lowercase hex digits, so
            // no bit flip of the stored CRC can parse to the same value.
            let crc_tok = parts
                .next()
                .filter(|t| {
                    t.len() == 8
                        && t.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
                })
                .ok_or_else(|| Error::Checkpoint(format!("bad crc in {header:?}")))?;
            let crc_expect = u32::from_str_radix(crc_tok, 16)
                .map_err(|e| Error::Checkpoint(format!("bad crc in {header:?}: {e}")))?;
            if parts.next().is_some() {
                return Err(Error::Checkpoint(format!("trailing tokens in {header:?}")));
            }
            if pos + len + 1 > bytes.len() {
                return Err(Error::Checkpoint(format!(
                    "section {name}: payload truncated ({} of {len} bytes present)",
                    bytes.len().saturating_sub(pos + 1)
                )));
            }
            // mb-lint: allow(indexing) -- the truncation check above proves pos + len + 1 <= len()
            let payload = &bytes[pos..pos + len];
            pos += len;
            // mb-lint: allow(indexing) -- same bound: pos + 1 <= len() after the payload slice
            if bytes[pos] != b'\n' {
                return Err(Error::Checkpoint(format!(
                    "section {name}: missing terminator after payload"
                )));
            }
            pos += 1;
            let mut protected = name.as_bytes().to_vec();
            protected.push(b'\n');
            protected.extend_from_slice(payload);
            let crc_actual = crc32(&protected);
            if crc_actual != crc_expect {
                return Err(Error::Checkpoint(format!(
                    "section {name}: crc mismatch (stored {crc_expect:08x}, computed {crc_actual:08x})"
                )));
            }
            let payload = std::str::from_utf8(payload)
                .map_err(|_| Error::Checkpoint(format!("section {name}: payload is not UTF-8")))?;
            decode_section(&mut ck, &name, payload)?;
        }
        if pos != bytes.len() {
            return Err(Error::Checkpoint(format!(
                "{} trailing bytes after final section",
                bytes.len() - pos
            )));
        }
        Ok(ck)
    }

    /// Serialize and write atomically through `storage`.
    ///
    /// # Errors
    /// Serialization errors from [`Checkpoint::to_bytes`], or
    /// [`Error::Io`] from the storage backend.
    pub fn save(&self, storage: &mut dyn Storage, path: &Path) -> Result<()> {
        storage.write_atomic(path, &self.to_bytes()?)
    }

    /// Read from `storage` and parse.
    ///
    /// # Errors
    /// [`Error::Io`] if unreadable, [`Error::Checkpoint`] if corrupt.
    pub fn load(storage: &mut dyn Storage, path: &Path) -> Result<Checkpoint> {
        Checkpoint::from_bytes(&storage.read(path)?)
    }
}

fn check_key(k: &str) -> Result<()> {
    if k.is_empty() || k.contains(char::is_whitespace) {
        return Err(Error::Checkpoint(format!("invalid checkpoint key {k:?}")));
    }
    Ok(())
}

fn read_line(bytes: &[u8], pos: &mut usize) -> Result<String> {
    // mb-lint: allow(indexing) -- pos only ever advances past bytes already found in range
    let rest = &bytes[*pos..];
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| Error::Checkpoint("unterminated line".into()))?;
    // mb-lint: allow(indexing) -- nl is a position() inside rest
    let line = std::str::from_utf8(&rest[..nl])
        .map_err(|_| Error::Checkpoint("header line is not UTF-8".into()))?
        .to_string();
    *pos += nl + 1;
    Ok(line)
}

fn decode_section(ck: &mut Checkpoint, name: &str, payload: &str) -> Result<()> {
    let dup = |what: &str| Error::Checkpoint(format!("duplicate section {what:?}"));
    if name == "meta" {
        if !ck.meta.is_empty() {
            return Err(dup(name));
        }
        for line in payload.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let (k, v) = line.split_once(' ').unwrap_or((line, ""));
            ck.meta.insert(k.to_string(), v.to_string());
        }
        Ok(())
    } else if let Some(key) = name.strip_prefix("params/") {
        let p = serialize::parse_params_body(payload)?;
        if ck.params.insert(key.to_string(), p).is_some() {
            return Err(dup(name));
        }
        Ok(())
    } else if let Some(key) = name.strip_prefix("optim/") {
        let s = decode_optim(payload)?;
        if ck.optim.insert(key.to_string(), s).is_some() {
            return Err(dup(name));
        }
        Ok(())
    } else if let Some(key) = name.strip_prefix("rng/") {
        let words: Vec<u64> = payload
            .split_whitespace()
            .map(|t| {
                t.parse::<u64>()
                    .map_err(|e| Error::Parse(format!("rng section {key}: bad word {t:?}: {e}")))
            })
            .collect::<Result<_>>()?;
        let state: [u64; 4] = words
            .try_into()
            .map_err(|_| Error::Parse(format!("rng section {key}: need exactly 4 words")))?;
        if ck.rng.insert(key.to_string(), state).is_some() {
            return Err(dup(name));
        }
        Ok(())
    } else if let Some(key) = name.strip_prefix("vec/") {
        let values: Vec<f64> = payload
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|e| Error::Parse(format!("vec section {key}: bad value {t:?}: {e}")))
            })
            .collect::<Result<_>>()?;
        if ck.vectors.insert(key.to_string(), values).is_some() {
            return Err(dup(name));
        }
        Ok(())
    } else {
        Err(Error::Checkpoint(format!("unknown section kind {name:?}")))
    }
}

fn write_tensor(t: &Tensor, out: &mut String) {
    out.push_str("tensor ");
    out.push_str(&t.rank().to_string());
    for d in t.shape() {
        out.push(' ');
        out.push_str(&d.to_string());
    }
    out.push('\n');
    for (i, v) in t.data().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{v:.17e}"));
    }
    out.push('\n');
}

fn parse_tensor(lines: &mut std::str::Lines<'_>) -> Result<Tensor> {
    let header = lines.next().ok_or_else(|| Error::Parse("missing tensor header".into()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("tensor") {
        return Err(Error::Parse(format!("expected tensor header, got {header:?}")));
    }
    let rank: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| Error::Parse(format!("bad tensor rank in {header:?}")))?;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::Parse(format!("bad tensor dim in {header:?}")))?;
        shape.push(d);
    }
    let numel: usize = shape.iter().product();
    let data_line = lines.next().ok_or_else(|| Error::Parse("missing tensor data line".into()))?;
    let data: Vec<f64> = data_line
        .split_whitespace()
        .map(|t| t.parse::<f64>().map_err(|e| Error::Parse(format!("bad tensor value: {e}"))))
        .collect::<Result<_>>()?;
    if data.len() != numel {
        return Err(Error::Parse(format!(
            "tensor shape {shape:?} needs {numel} values, found {}",
            data.len()
        )));
    }
    Ok(Tensor::from_vec(shape, data))
}

fn encode_optim(s: &OptimState) -> String {
    let mut out = String::new();
    match s {
        OptimState::Sgd { lr, momentum, weight_decay, velocity } => {
            out.push_str(&format!("sgd {lr:.17e} {momentum:.17e} {weight_decay:.17e}\n"));
            match velocity {
                None => out.push_str("velocity none\n"),
                Some(vs) => {
                    out.push_str(&format!("velocity {}\n", vs.len()));
                    for t in vs {
                        write_tensor(t, &mut out);
                    }
                }
            }
        }
        OptimState::Adam { lr, beta1, beta2, eps, t, moments } => {
            out.push_str(&format!("adam {lr:.17e} {beta1:.17e} {beta2:.17e} {eps:.17e} {t}\n"));
            match moments {
                None => out.push_str("moments none\n"),
                Some((m, v)) => {
                    out.push_str(&format!("moments {}\n", m.len()));
                    for t in m.iter().chain(v.iter()) {
                        write_tensor(t, &mut out);
                    }
                }
            }
        }
    }
    out
}

fn decode_optim(payload: &str) -> Result<OptimState> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or_else(|| Error::Parse("empty optim section".into()))?;
    let mut parts = header.split_whitespace();
    let kind = parts.next().ok_or_else(|| Error::Parse("blank optim header".into()))?;
    let mut take_f64 = |what: &str| -> Result<f64> {
        parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Error::Parse(format!("optim header missing {what}")))
    };
    match kind {
        "sgd" => {
            let lr = take_f64("lr")?;
            let momentum = take_f64("momentum")?;
            let weight_decay = take_f64("weight_decay")?;
            let velocity = parse_tensor_group(&mut lines, "velocity")?;
            Ok(OptimState::Sgd { lr, momentum, weight_decay, velocity })
        }
        "adam" => {
            let lr = take_f64("lr")?;
            let beta1 = take_f64("beta1")?;
            let beta2 = take_f64("beta2")?;
            let eps = take_f64("eps")?;
            let t: u64 = header
                .split_whitespace()
                .nth(5)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| Error::Parse("adam header missing step count".into()))?;
            let moments = match parse_tensor_group(&mut lines, "moments")? {
                None => None,
                Some(all) => {
                    if all.len() % 2 != 0 {
                        return Err(Error::Parse("adam moments must pair m and v".into()));
                    }
                    let mut m = all;
                    let v = m.split_off(m.len() / 2);
                    Some((m, v))
                }
            };
            Ok(OptimState::Adam { lr, beta1, beta2, eps, t, moments })
        }
        other => Err(Error::Parse(format!("unknown optimizer kind {other:?}"))),
    }
}

/// Parse a `"<label> none"` or `"<label> <n>"` line followed by `n`
/// tensors. For `"moments"` the caller expects `2n` tensors (m then v),
/// so the count line stores `n` but is followed by `2n` tensors.
fn parse_tensor_group(lines: &mut std::str::Lines<'_>, label: &str) -> Result<Option<Vec<Tensor>>> {
    let header = lines.next().ok_or_else(|| Error::Parse(format!("missing {label} line")))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(label) {
        return Err(Error::Parse(format!("expected {label} line, got {header:?}")));
    }
    let count_tok =
        parts.next().ok_or_else(|| Error::Parse(format!("{label} line missing count")))?;
    if count_tok == "none" {
        return Ok(None);
    }
    let count: usize =
        count_tok.parse().map_err(|e| Error::Parse(format!("bad {label} count: {e}")))?;
    let total = if label == "moments" { count * 2 } else { count };
    let mut tensors = Vec::with_capacity(total);
    for _ in 0..total {
        tensors.push(parse_tensor(lines)?);
    }
    Ok(Some(tensors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer, Sgd};
    use crate::params::GradVec;
    use mb_common::storage::MemStorage;
    use mb_common::Rng;

    fn sample() -> Checkpoint {
        let mut rng = Rng::seed_from_u64(7);
        let mut ck = Checkpoint::new();
        let mut bi = Params::new();
        bi.add("emb", Tensor::randn(vec![4, 3], 0.0, 1.0, &mut rng));
        bi.add("w", Tensor::randn(vec![3, 2], 0.0, 0.5, &mut rng));
        let mut cross = Params::new();
        cross.add("w", Tensor::randn(vec![2, 2], 0.0, 0.5, &mut rng));
        // Step a real Adam so moments are populated.
        let mut opt = Adam::new(0.01);
        let g = GradVec::from_tensors(vec![
            Tensor::randn(vec![4, 3], 0.0, 0.1, &mut rng),
            Tensor::randn(vec![3, 2], 0.0, 0.1, &mut rng),
        ]);
        opt.step(&mut bi, &g);
        ck.optim.insert("bi".into(), opt.state());
        ck.optim.insert("sgd".into(), Sgd::new(0.1).with_momentum(0.9).state());
        ck.params.insert("bi".into(), bi);
        ck.params.insert("cross".into(), cross);
        ck.rng.insert("meta".into(), rng.state());
        ck.vectors.insert("step_losses".into(), vec![0.5, 0.25, 1.0 / 3.0]);
        ck.vectors.insert("empty".into(), Vec::new());
        ck.meta.insert("stage".into(), "2".into());
        ck.meta.insert("step".into(), "17".into());
        ck.meta.insert("note".into(), "has spaces in value".into());
        ck
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample();
        let bytes = ck.to_bytes().unwrap();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn storage_round_trip() {
        let mut s = MemStorage::new();
        let ck = sample();
        let path = Path::new("ckpt/gen-000001.mbc");
        ck.save(&mut s, path).unwrap();
        assert_eq!(Checkpoint::load(&mut s, path).unwrap(), ck);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes().unwrap();
        for cut in 0..bytes.len() {
            let res = Checkpoint::from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "truncation to {cut}/{} bytes loaded silently", bytes.len());
        }
    }

    #[test]
    fn bit_flips_are_detected_or_exact() {
        // Flipping any single bit must either fail to load or (never,
        // for this format) load back to the original. A flip may not
        // silently produce a *different* checkpoint.
        let ck = sample();
        let bytes = ck.to_bytes().unwrap();
        let mut undetected = 0usize;
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                if let Ok(loaded) = Checkpoint::from_bytes(&mutated) {
                    assert_eq!(loaded, ck, "flip at {byte}:{bit} changed the checkpoint");
                    undetected += 1;
                }
            }
        }
        // CRC catches essentially everything; allow zero tolerance.
        assert_eq!(undetected, 0, "{undetected} flips loaded successfully");
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes.extend_from_slice(b"junk\n");
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn v1_documents_load_as_params_only() {
        let mut p = Params::new();
        p.add("w", Tensor::vector(&[1.0, 2.0, 3.0]));
        let v1 = serialize::to_string(&p).unwrap();
        let ck = Checkpoint::from_bytes(v1.as_bytes()).unwrap();
        assert_eq!(ck.params.len(), 1);
        assert_eq!(ck.params[V1_PARAMS_KEY], p);
        assert!(ck.optim.is_empty() && ck.rng.is_empty());
    }

    #[test]
    fn rejects_non_finite_params() {
        let mut ck = Checkpoint::new();
        let mut p = Params::new();
        p.add("w", Tensor::vector(&[f64::NAN]));
        ck.params.insert("m".into(), p);
        assert!(matches!(ck.to_bytes(), Err(Error::Diverged(_))));
    }

    #[test]
    fn rejects_bad_keys() {
        let mut ck = Checkpoint::new();
        ck.meta.insert("has space".into(), "v".into());
        assert!(ck.to_bytes().is_err());
        let mut ck = Checkpoint::new();
        ck.meta.insert("k".into(), "multi\nline".into());
        assert!(ck.to_bytes().is_err());
        let mut ck = Checkpoint::new();
        ck.vectors.insert(String::new(), vec![1.0]);
        assert!(ck.to_bytes().is_err());
    }

    #[test]
    fn optimizer_state_restores_through_checkpoint() {
        let mut params = Params::new();
        params.add("x", Tensor::vector(&[1.0, -1.0]));
        let mut opt = Adam::new(0.05);
        let g = GradVec::from_tensors(vec![Tensor::vector(&[0.3, 0.7])]);
        opt.step(&mut params, &g);
        opt.step(&mut params, &g);

        let mut ck = Checkpoint::new();
        ck.optim.insert("opt".into(), opt.state());
        let back = Checkpoint::from_bytes(&ck.to_bytes().unwrap()).unwrap();

        let mut restored = Adam::new(0.0);
        restored.restore(back.optim["opt"].clone()).unwrap();
        assert_eq!(restored.state(), opt.state());
        assert_eq!(restored.steps(), 2);
    }
}
