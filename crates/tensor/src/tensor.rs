//! Dense row-major `f64` tensors.
//!
//! [`Tensor`] is deliberately simple: a shape vector plus a flat data
//! buffer. Rank-1 and rank-2 tensors cover everything the linker needs;
//! higher ranks are representable but only the generic elementwise ops
//! accept them. All shape violations panic — they are programming errors
//! in this workspace, not recoverable conditions.

use mb_common::Rng;
use std::fmt;

/// A dense, row-major tensor of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …; n={}]", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    /// Build a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not equal the shape product.
    pub fn from_vec(shape: impl Into<Vec<usize>>, data: Vec<f64>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "Tensor::from_vec: shape {:?} implies {} elements, got {}",
            shape,
            numel,
            data.len()
        );
        Tensor { shape, data }
    }

    /// A rank-1 tensor from a slice.
    pub fn vector(data: &[f64]) -> Self {
        Tensor::from_vec(vec![data.len()], data.to_vec())
    }

    /// A rank-2 tensor from nested slices (each inner slice is a row).
    ///
    /// # Panics
    /// Panics on ragged rows.
    pub fn matrix(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Tensor::matrix: ragged rows");
            data.extend_from_slice(row);
        }
        Tensor::from_vec(vec![r, c], data)
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let numel = shape.iter().product();
        Tensor { shape, data: vec![0.0; numel] }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Vec<usize>>, value: f64) -> Self {
        let shape = shape.into();
        let numel = shape.iter().product();
        Tensor { shape, data: vec![value; numel] }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor { shape: vec![], data: vec![value] }
    }

    /// I.i.d. normal entries with the given mean and std.
    pub fn randn(shape: impl Into<Vec<usize>>, mean: f64, std: f64, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.normal(mean, std)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions). Scalars have rank 0.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Rows of a rank-2 tensor (or length of rank-1, or 1 for scalar).
    #[inline]
    pub fn rows(&self) -> usize {
        match self.rank() {
            0 => 1,
            _ => self.shape[0],
        }
    }

    /// Columns of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless rank is exactly 2.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a rank-2 tensor, shape {:?}", self.shape);
        self.shape[1]
    }

    /// Flat read-only view of the data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of the data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.numel(), 1, "item() on tensor with shape {:?}", self.shape);
        self.data[0]
    }

    /// Element access for rank-2 tensors.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert_eq!(self.rank(), 2);
        debug_assert!(i < self.shape[0] && j < self.shape[1]);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element access for rank-2 tensors.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert_eq!(self.rank(), 2);
        let c = self.shape[1];
        &mut self.data[i * c + j]
    }

    /// Row `i` of a rank-2 tensor as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert_eq!(self.rank(), 2, "row() requires rank-2, shape {:?}", self.shape);
        let c = self.shape[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert_eq!(self.rank(), 2, "row_mut() requires rank-2, shape {:?}", self.shape);
        let c = self.shape[1];
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(mut self, shape: impl Into<Vec<usize>>) -> Self {
        let shape = shape.into();
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        self.shape = shape;
        self
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip: shape {:?} vs {:?}", self.shape, other.shape);
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scale by a constant.
    pub fn scale(&self, k: f64) -> Tensor {
        self.map(|x| k * x)
    }

    /// In-place `self += k * other` (axpy). The hot path of every optimizer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, k: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy: shape {:?} vs {:?}", self.shape, other.shape);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Flat dot product of two same-shaped tensors.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "dot: shape {:?} vs {:?}", self.shape, other.shape);
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Matrix product `self @ other` for rank-2 tensors.
    ///
    /// Runs the cache-blocked register-tiled kernel
    /// ([`crate::kernels`]) on one thread. Each output element is a
    /// single ascending-k fold with separate multiply and add, so the
    /// result is bit-identical to the textbook triple loop.
    ///
    /// # Panics
    /// Panics unless shapes are `[m, k] @ [k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::kernels::matmul_impl(self, other, false, mb_par::Threads::single())
    }

    /// [`Tensor::matmul`] with output rows split across `threads`
    /// workers — bit-identical to the single-threaded product for any
    /// worker count (DESIGN.md §11).
    pub fn matmul_with(&self, other: &Tensor, threads: mb_par::Threads) -> Tensor {
        crate::kernels::matmul_impl(self, other, false, threads)
    }

    /// Matrix product `self @ other.T` for rank-2 tensors — the score
    /// matrix `M · Eᵀ` of the bi-encoder. Rides the same blocked kernel
    /// as [`Tensor::matmul`]; the transposed layout is absorbed during
    /// panel packing.
    ///
    /// # Panics
    /// Panics unless shapes are `[m, k] @ [n, k]ᵀ`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        crate::kernels::matmul_impl(self, other, true, mb_par::Threads::single())
    }

    /// [`Tensor::matmul_t`] with output rows split across `threads`
    /// workers — bit-identical for any worker count.
    pub fn matmul_t_with(&self, other: &Tensor, threads: mb_par::Threads) -> Tensor {
        crate::kernels::matmul_impl(self, other, true, threads)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose rank {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::util::approx_eq;

    #[test]
    fn construct_and_query() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "implies")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
        assert_eq!(Tensor::scalar(1.0).rank(), 0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::vector(&[1.0, 1.0]);
        a.axpy(0.5, &Tensor::vector(&[2.0, 4.0]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!(approx_eq(t.norm(), 30.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::matrix(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(1);
        let a = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(vec![5, 4], 0.0, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Tensor::randn(vec![4, 4], 0.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros(vec![4, 4]);
        for i in 0..4 {
            *eye.at_mut(i, i) = 1.0;
        }
        let out = a.matmul(&eye);
        for (x, y) in out.data().iter().zip(a.data()) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Tensor::randn(vec![3, 5], 0.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::vector(&[1.0, 2.0, 3.0, 4.0]).reshape(vec![2, 2]);
        assert_eq!(t.at(1, 0), 3.0);
    }

    #[test]
    fn dot_and_non_finite() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, -1.0]);
        assert_eq!(a.dot(&b), 1.0);
        assert!(!a.has_non_finite());
        assert!(Tensor::vector(&[f64::NAN]).has_non_finite());
        assert!(Tensor::vector(&[f64::INFINITY]).has_non_finite());
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        let a = Tensor::randn(vec![10], 0.0, 1.0, &mut r1);
        let b = Tensor::randn(vec![10], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }
}
