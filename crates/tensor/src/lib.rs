//! # mb-tensor
//!
//! A small, dependency-free dense tensor library with tape-based
//! reverse-mode automatic differentiation, written for the metablink-rs
//! reproduction of *"Effective Few-Shot Named Entity Linking by
//! Meta-Learning"* (ICDE 2022).
//!
//! The paper trains BERT-scale encoders on GPUs; this crate is the
//! CPU-scale substitute substrate. It provides exactly what the
//! reproduction needs, implemented carefully rather than generally:
//!
//! * [`Tensor`] — row-major `f64` tensors with shape checking.
//! * [`Tape`]/[`Var`] — an autodiff tape with fused operators for the
//!   paper's losses: the in-batch negative entity-linking loss (Eq. 6),
//!   per-row softmax cross-entropy (cross-encoder ranking), binary cross
//!   entropy (the rewriter's span scorer), bag-of-embedding lookup with
//!   mean pooling, and row L2-normalisation.
//! * [`optim`] — SGD (with momentum/weight decay) and Adam.
//! * [`params`] — named parameter collections with (de)serialization.
//! * [`checkpoint`] — sectioned, CRC-protected `mb-params v2` training
//!   snapshots (params + optimizer moments + RNG streams + cursor).
//! * [`gradcheck`] — central-finite-difference gradient verification,
//!   used extensively by this crate's tests and by `mb-core`'s
//!   meta-gradient tests.
//! * [`frozen`] — tape-free forward-only inference ops over an
//!   `Arc`-shared [`frozen::FrozenParams`] snapshot, pinned
//!   bit-identical to the tape forward.
//! * [`quant`] — f16/int8 quantized embedding tables with a
//!   bounded-error scoring contract for the serving path.
//!
//! `f64` is used throughout: the meta-learning reweighting step compares
//! tiny gradient dot products, and double precision keeps those tests
//! deterministic and tight.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops are clearer in numeric kernels

pub mod checkpoint;
pub mod frozen;
pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod optim;
pub mod params;
pub mod quant;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use frozen::FrozenParams;
pub use params::Params;
pub use quant::QuantMode;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
