//! First-order optimizers: SGD (with momentum and weight decay) and Adam.
//!
//! The paper trains both encoders with Adam at lr 2e-5 (BERT scale); the
//! CPU-scale encoders here use the same optimizers with lrs tuned to the
//! smaller models. The meta-forward step of Algorithm 1 is a *plain*
//! SGD step by construction (Eq. 9), independent of the outer optimizer.

use crate::params::{GradVec, Params};
use crate::tensor::Tensor;
use mb_common::{Error, Result};

/// A snapshot of an optimizer's full internal state — hyperparameters
/// plus accumulated moments — sufficient to resume training
/// bit-identically after a restart. Produced by [`Optimizer::state`]
/// and consumed by [`Optimizer::restore`]; persisted inside `mb-params
/// v2` checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimState {
    /// State of an [`Sgd`] optimizer.
    Sgd {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (0 disables).
        momentum: f64,
        /// Decoupled weight decay (0 disables).
        weight_decay: f64,
        /// Momentum buffers, if any step has allocated them.
        velocity: Option<Vec<Tensor>>,
    },
    /// State of an [`Adam`] optimizer.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay rate.
        beta1: f64,
        /// Second-moment decay rate.
        beta2: f64,
        /// Denominator fuzz.
        eps: f64,
        /// Steps taken (drives bias correction).
        t: u64,
        /// First- and second-moment buffers, if allocated.
        moments: Option<(Vec<Tensor>, Vec<Tensor>)>,
    },
}

/// A first-order optimizer over a [`Params`] collection.
pub trait Optimizer {
    /// Apply one update step in place.
    ///
    /// # Panics
    /// Implementations panic if `grads` does not align with `params`.
    fn step(&mut self, params: &mut Params, grads: &GradVec);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Override the learning rate (e.g., for decay schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Snapshot the full state for checkpointing.
    fn state(&self) -> OptimState;

    /// Restore a snapshot taken from the same kind of optimizer.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] if `state` was produced by a different
    /// optimizer kind.
    fn restore(&mut self, state: OptimState) -> Result<()>;
}

/// Stochastic gradient descent with optional momentum and decoupled
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocity: Option<Vec<Tensor>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: None }
    }

    /// Enable classical momentum.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Enable decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &GradVec) {
        assert_eq!(params.len(), grads.len(), "Sgd::step: param/grad count mismatch");
        if self.momentum == 0.0 {
            for i in 0..params.len() {
                let id = crate::params::ParamId(i);
                let p = params.get_mut(id);
                if self.weight_decay > 0.0 {
                    let decay = 1.0 - self.lr * self.weight_decay;
                    for v in p.data_mut() {
                        *v *= decay;
                    }
                }
                p.axpy(-self.lr, grads.get(id));
            }
            return;
        }
        let velocity = self.velocity.get_or_insert_with(|| {
            (0..params.len())
                .map(|i| Tensor::zeros(params.get(crate::params::ParamId(i)).shape().to_vec()))
                .collect()
        });
        for i in 0..params.len() {
            let id = crate::params::ParamId(i);
            let v = &mut velocity[i];
            // v <- momentum * v + g
            for x in v.data_mut() {
                *x *= self.momentum;
            }
            v.axpy(1.0, grads.get(id));
            let p = params.get_mut(id);
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                for x in p.data_mut() {
                    *x *= decay;
                }
            }
            p.axpy(-self.lr, v);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn state(&self) -> OptimState {
        OptimState::Sgd {
            lr: self.lr,
            momentum: self.momentum,
            weight_decay: self.weight_decay,
            velocity: self.velocity.clone(),
        }
    }

    fn restore(&mut self, state: OptimState) -> Result<()> {
        match state {
            OptimState::Sgd { lr, momentum, weight_decay, velocity } => {
                self.lr = lr;
                self.momentum = momentum;
                self.weight_decay = weight_decay;
                self.velocity = velocity;
                Ok(())
            }
            OptimState::Adam { .. } => {
                Err(Error::Checkpoint("cannot restore Adam state into an Sgd optimizer".into()))
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Option<Vec<Tensor>>,
    v: Option<Vec<Tensor>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f64) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: None, v: None }
    }

    /// Override the exponential decay rates.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &GradVec) {
        assert_eq!(params.len(), grads.len(), "Adam::step: param/grad count mismatch");
        let n = params.len();
        let zeros = |params: &Params| -> Vec<Tensor> {
            (0..n)
                .map(|i| Tensor::zeros(params.get(crate::params::ParamId(i)).shape().to_vec()))
                .collect()
        };
        if self.m.is_none() {
            self.m = Some(zeros(params));
            self.v = Some(zeros(params));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let m = self.m.as_mut().expect("initialized above");
        let v = self.v.as_mut().expect("initialized above");
        for i in 0..n {
            let id = crate::params::ParamId(i);
            let g = grads.get(id);
            let mi = &mut m[i];
            let vi = &mut v[i];
            for ((mj, vj), &gj) in
                mi.data_mut().iter_mut().zip(vi.data_mut().iter_mut()).zip(g.data())
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
            }
            let p = params.get_mut(id);
            for ((pj, &mj), &vj) in p.data_mut().iter_mut().zip(mi.data()).zip(vi.data()) {
                let mhat = mj / bc1;
                let vhat = vj / bc2;
                *pj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn state(&self) -> OptimState {
        OptimState::Adam {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            moments: match (&self.m, &self.v) {
                (Some(m), Some(v)) => Some((m.clone(), v.clone())),
                _ => None,
            },
        }
    }

    fn restore(&mut self, state: OptimState) -> Result<()> {
        match state {
            OptimState::Adam { lr, beta1, beta2, eps, t, moments } => {
                self.lr = lr;
                self.beta1 = beta1;
                self.beta2 = beta2;
                self.eps = eps;
                self.t = t;
                match moments {
                    Some((m, v)) => {
                        self.m = Some(m);
                        self.v = Some(v);
                    }
                    None => {
                        self.m = None;
                        self.v = None;
                    }
                }
                Ok(())
            }
            OptimState::Sgd { .. } => {
                Err(Error::Checkpoint("cannot restore Sgd state into an Adam optimizer".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise f(x) = ||x - target||² and check convergence.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let target = Tensor::vector(&[1.0, -2.0, 3.0]);
        let mut params = Params::new();
        let x = params.add("x", Tensor::vector(&[0.0, 0.0, 0.0]));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let t = tape.leaf(target.clone());
            let d = tape.sub(vars[x.0], t);
            let sq = tape.mul_elem(d, d);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            let gv = params.collect_grads(&vars, &grads);
            opt.step(&mut params, &gv);
        }
        params.get(x).sub(&target).norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(run_quadratic(&mut opt, 100) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.02).with_momentum(0.9);
        assert!(run_quadratic(&mut opt, 400) < 1e-5);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(run_quadratic(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut params = Params::new();
        let x = params.add("x", Tensor::vector(&[10.0]));
        let g = GradVec::zeros_like(&params);
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        opt.step(&mut params, &g);
        assert!((params.get(x).data()[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_get_set() {
        let mut opt: Box<dyn Optimizer> = Box::new(Adam::new(0.01));
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.002);
        assert_eq!(opt.learning_rate(), 0.002);
    }

    #[test]
    fn adam_state_restore_resumes_bit_identically() {
        let target = Tensor::vector(&[1.0, -2.0, 3.0]);
        let grad_at = |params: &Params| {
            let x = params.id_of("x").unwrap();
            let mut g = params.get(x).clone();
            let d = g.sub(&target);
            for (gi, di) in g.data_mut().iter_mut().zip(d.data()) {
                *gi = 2.0 * di;
            }
            GradVec::from_tensors(vec![g])
        };
        let run = |steps_then_snapshot: Option<u64>| -> Vec<f64> {
            let mut params = Params::new();
            let x = params.add("x", Tensor::vector(&[0.0, 0.0, 0.0]));
            let mut opt = Adam::new(0.05);
            for step in 0..20u64 {
                if Some(step) == steps_then_snapshot {
                    // Simulate a restart: snapshot, rebuild, restore.
                    let state = opt.state();
                    opt = Adam::new(999.0); // wrong lr, must be overwritten
                    opt.restore(state).unwrap();
                }
                let g = grad_at(&params);
                opt.step(&mut params, &g);
            }
            params.get(x).data().to_vec()
        };
        let uninterrupted = run(None);
        for snapshot_at in [0, 1, 7, 19] {
            let resumed = run(Some(snapshot_at));
            let same = uninterrupted.iter().zip(&resumed).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                same,
                "restore at step {snapshot_at} diverged: {uninterrupted:?} vs {resumed:?}"
            );
        }
    }

    #[test]
    fn sgd_state_round_trips_velocity() {
        let mut params = Params::new();
        params.add("x", Tensor::vector(&[1.0, 2.0]));
        let g = GradVec::from_tensors(vec![Tensor::vector(&[0.5, -0.5])]);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        opt.step(&mut params, &g);
        let state = opt.state();
        let mut fresh = Sgd::new(0.0);
        fresh.restore(state.clone()).unwrap();
        assert_eq!(fresh.state(), state);
    }

    #[test]
    fn restore_rejects_kind_mismatch() {
        let mut sgd = Sgd::new(0.1);
        let mut adam = Adam::new(0.1);
        assert!(sgd.restore(adam.state()).is_err());
        assert!(adam.restore(Sgd::new(0.1).state()).is_err());
        let _ = &mut adam;
    }

    #[test]
    fn adam_counts_steps() {
        let mut params = Params::new();
        params.add("x", Tensor::scalar(0.0));
        let g = GradVec::zeros_like(&params);
        let mut opt = Adam::new(0.1);
        opt.step(&mut params, &g);
        opt.step(&mut params, &g);
        assert_eq!(opt.steps(), 2);
    }
}
