//! Finite-difference gradient verification.
//!
//! Used by this crate's own op tests and — crucially — by `mb-core`'s
//! meta-gradient tests, which verify the analytic reduction of Eq. 12
//! against central differences of the full bilevel objective.

use crate::params::{GradVec, ParamId, Params};
use crate::tensor::Tensor;

/// Central-difference gradient of `f` with respect to a single tensor.
pub fn numeric_grad_tensor(f: &mut dyn FnMut(&Tensor) -> f64, x: &Tensor, eps: f64) -> Tensor {
    let mut g = Tensor::zeros(x.shape().to_vec());
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        g.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
    }
    g
}

/// Central-difference gradient of `f` with respect to every parameter
/// in `params`, returned in parameter order.
pub fn numeric_grad_params(
    f: &mut dyn FnMut(&Params) -> f64,
    params: &Params,
    eps: f64,
) -> GradVec {
    let mut out = Vec::with_capacity(params.len());
    for pi in 0..params.len() {
        let id = ParamId(pi);
        let shape = params.get(id).shape().to_vec();
        let mut g = Tensor::zeros(shape);
        for i in 0..params.get(id).numel() {
            let mut pp = params.clone();
            pp.get_mut(id).data_mut()[i] += eps;
            let mut pm = params.clone();
            pm.get_mut(id).data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&pp) - f(&pm)) / (2.0 * eps);
        }
        out.push(g);
    }
    GradVec::from_tensors(out)
}

/// Maximum elementwise relative error between analytic and numeric
/// gradients (relative to `max(1, |a|, |b|)`).
pub fn max_rel_error(analytic: &GradVec, numeric: &GradVec) -> f64 {
    let mut worst: f64 = 0.0;
    for (a, b) in analytic.iter().zip(numeric.iter()) {
        for (&x, &y) in a.data().iter().zip(b.data()) {
            let scale = 1.0_f64.max(x.abs()).max(y.abs());
            worst = worst.max((x - y).abs() / scale);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn numeric_grad_of_quadratic() {
        let x = Tensor::vector(&[1.0, -2.0]);
        let g = numeric_grad_tensor(&mut |x| x.data().iter().map(|v| v * v).sum(), &x, 1e-5);
        assert!((g.data()[0] - 2.0).abs() < 1e-6);
        assert!((g.data()[1] + 4.0).abs() < 1e-6);
    }

    #[test]
    fn params_gradcheck_matches_autodiff() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::matrix(&[&[0.3, -0.4], &[0.1, 0.9]]));
        let b = params.add("b", Tensor::vector(&[0.2, -0.1]));
        let _ = (w, b);

        let mut loss = |p: &Params| -> f64 {
            let mut tape = Tape::new();
            let vars = p.inject(&mut tape);
            let x = tape.leaf(Tensor::matrix(&[&[1.0, 2.0], &[-1.0, 0.5]]));
            let y = tape.linear(x, vars[0], vars[1]);
            let h = tape.tanh(y);
            let l = tape.mean_all(h);
            tape.value(l).item()
        };

        let numeric = numeric_grad_params(&mut loss, &params, 1e-5);
        let analytic = {
            let mut tape = Tape::new();
            let vars = params.inject(&mut tape);
            let x = tape.leaf(Tensor::matrix(&[&[1.0, 2.0], &[-1.0, 0.5]]));
            let y = tape.linear(x, vars[0], vars[1]);
            let h = tape.tanh(y);
            let l = tape.mean_all(h);
            let grads = tape.backward(l);
            params.collect_grads(&vars, &grads)
        };
        assert!(max_rel_error(&analytic, &numeric) < 1e-6);
    }
}
