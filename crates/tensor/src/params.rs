//! Named parameter collections.
//!
//! A [`Params`] owns a model's trainable tensors in a stable order, so
//! that optimizers, gradient vectors, checkpoints, and the
//! meta-learning machinery can all address parameters positionally
//! while humans address them by name.

use crate::tape::{Grads, Tape, Var};
use crate::tensor::Tensor;
use mb_common::{Error, Result};

/// Stable positional handle to one parameter inside a [`Params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The parameter's position in registration order — also its index
    /// into the var vector returned by [`Params::inject`] and into a
    /// [`GradVec`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered, named collection of trainable tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl Params {
    /// An empty collection.
    pub fn new() -> Self {
        Params::default()
    }

    /// Register a parameter. Names must be unique.
    ///
    /// # Panics
    /// Panics on a duplicate name — model construction bugs should fail
    /// loudly.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.names.contains(&name), "Params::add: duplicate parameter name {name:?}");
        self.names.push(name);
        self.tensors.push(tensor);
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn numel(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Borrow a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutably borrow a parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Look up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Result<ParamId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(ParamId)
            .ok_or_else(|| Error::NotFound(format!("parameter {name:?}")))
    }

    /// Iterate over `(name, tensor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(self.tensors.iter())
    }

    /// Register every parameter as a leaf on `tape`, returning the vars
    /// in parameter order.
    pub fn inject(&self, tape: &mut Tape) -> Vec<Var> {
        self.tensors.iter().map(|t| tape.leaf(t.clone())).collect()
    }

    /// Collect per-parameter gradients from a backward pass, in
    /// parameter order, with zeros for unconnected parameters.
    ///
    /// `vars` must be the vector returned by [`Params::inject`] on the
    /// tape that produced `grads`.
    pub fn collect_grads(&self, vars: &[Var], grads: &Grads) -> GradVec {
        assert_eq!(vars.len(), self.tensors.len(), "collect_grads: var/param count mismatch");
        let gs = vars
            .iter()
            .zip(&self.tensors)
            .map(|(v, t)| grads.get_or_zeros(*v, t.shape()))
            .collect();
        GradVec { grads: gs }
    }

    /// True if any parameter contains NaN or infinity.
    pub fn has_non_finite(&self) -> bool {
        self.tensors.iter().any(Tensor::has_non_finite)
    }

    /// In-place `self += k * delta` across all parameters (used by the
    /// meta-forward step, Eq. 9, to form the pseudo-updated model).
    ///
    /// # Panics
    /// Panics on shape or length mismatch.
    pub fn axpy(&mut self, k: f64, delta: &GradVec) {
        assert_eq!(self.tensors.len(), delta.grads.len(), "Params::axpy length mismatch");
        for (t, d) in self.tensors.iter_mut().zip(&delta.grads) {
            t.axpy(k, d);
        }
    }
}

/// Per-parameter gradients aligned with a [`Params`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct GradVec {
    grads: Vec<Tensor>,
}

impl GradVec {
    /// Construct from raw tensors (must align with the target `Params`).
    pub fn from_tensors(grads: Vec<Tensor>) -> Self {
        GradVec { grads }
    }

    /// A zero gradient matching `params` shapes.
    pub fn zeros_like(params: &Params) -> Self {
        GradVec {
            grads: params.tensors.iter().map(|t| Tensor::zeros(t.shape().to_vec())).collect(),
        }
    }

    /// Borrow the gradient for one parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Iterate over gradients in parameter order.
    pub fn iter(&self) -> impl Iterator<Item = &Tensor> {
        self.grads.iter()
    }

    /// Number of gradient tensors.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True if there are no gradient tensors.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Flat dot product with another gradient vector — the core of the
    /// analytic meta-backward step (Eq. 12): `⟨∇l_g(φ̂), ∇l_j(φ)⟩`.
    ///
    /// # Panics
    /// Panics on misaligned shapes.
    pub fn dot(&self, other: &GradVec) -> f64 {
        assert_eq!(self.grads.len(), other.grads.len(), "GradVec::dot length mismatch");
        self.grads.iter().zip(&other.grads).map(|(a, b)| a.dot(b)).sum()
    }

    /// Dot product restricted to parameters selected by `keep`
    /// (indexed in parameter order). Used by the meta-reweighting to
    /// compare only the *shared* dense parameters, where per-example
    /// gradient geometry is informative.
    pub fn masked_dot(&self, other: &GradVec, keep: &dyn Fn(usize) -> bool) -> f64 {
        assert_eq!(self.grads.len(), other.grads.len(), "GradVec::masked_dot length mismatch");
        self.grads
            .iter()
            .zip(&other.grads)
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, (a, b))| a.dot(b))
            .sum()
    }

    /// L2 norm restricted to parameters selected by `keep`.
    pub fn masked_norm(&self, keep: &dyn Fn(usize) -> bool) -> f64 {
        self.grads
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Global L2 norm across all gradients.
    pub fn norm(&self) -> f64 {
        self.grads.iter().map(|g| g.data().iter().map(|x| x * x).sum::<f64>()).sum::<f64>().sqrt()
    }

    /// In-place `self += k * other`.
    pub fn axpy(&mut self, k: f64, other: &GradVec) {
        assert_eq!(self.grads.len(), other.grads.len(), "GradVec::axpy length mismatch");
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            a.axpy(k, b);
        }
    }

    /// Scale all gradients in place (used for gradient clipping).
    pub fn scale_in_place(&mut self, k: f64) {
        for g in &mut self.grads {
            for v in g.data_mut() {
                *v *= k;
            }
        }
    }

    /// Clip to a maximum global norm; returns the scale factor applied.
    pub fn clip_global_norm(&mut self, max_norm: f64) -> f64 {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            let k = max_norm / n;
            self.scale_in_place(k);
            k
        } else {
            1.0
        }
    }

    /// True if any gradient contains NaN or infinity.
    pub fn has_non_finite(&self) -> bool {
        self.grads.iter().any(Tensor::has_non_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    fn sample_params() -> (Params, ParamId, ParamId) {
        let mut p = Params::new();
        let w = p.add("w", Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = p.add("b", Tensor::vector(&[0.5, -0.5]));
        (p, w, b)
    }

    #[test]
    fn add_get_and_lookup() {
        let (p, w, b) = sample_params();
        assert_eq!(p.len(), 2);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.get(w).shape(), &[2, 2]);
        assert_eq!(p.id_of("b").unwrap(), b);
        assert!(p.id_of("missing").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.add("w", Tensor::scalar(1.0));
        p.add("w", Tensor::scalar(2.0));
    }

    #[test]
    fn inject_and_collect_grads() {
        let (p, w, b) = sample_params();
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        // loss = sum(w_tensor) — b unconnected.
        let l = tape.sum_all(vars[w.0]);
        let grads = tape.backward(l);
        let gv = p.collect_grads(&vars, &grads);
        assert_eq!(gv.get(w).data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(gv.get(b).data(), &[0.0, 0.0]);
    }

    #[test]
    fn gradvec_dot_and_norm() {
        let a = GradVec::from_tensors(vec![Tensor::vector(&[1.0, 2.0]), Tensor::scalar(3.0)]);
        let b = GradVec::from_tensors(vec![Tensor::vector(&[4.0, 5.0]), Tensor::scalar(6.0)]);
        assert_eq!(a.dot(&b), 4.0 + 10.0 + 18.0);
        assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn clip_global_norm_scales_down_only() {
        let mut g = GradVec::from_tensors(vec![Tensor::vector(&[3.0, 4.0])]);
        let k = g.clip_global_norm(10.0);
        assert_eq!(k, 1.0);
        let k2 = g.clip_global_norm(1.0);
        assert!((k2 - 0.2).abs() < 1e-12);
        assert!((g.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn params_axpy_applies_update() {
        let (mut p, w, _) = sample_params();
        let g = GradVec::from_tensors(vec![
            Tensor::matrix(&[&[1.0, 0.0], &[0.0, 1.0]]),
            Tensor::vector(&[0.0, 0.0]),
        ]);
        p.axpy(-0.5, &g);
        assert_eq!(p.get(w).data(), &[0.5, 2.0, 3.0, 3.5]);
    }

    #[test]
    fn non_finite_detection() {
        let (mut p, w, _) = sample_params();
        assert!(!p.has_non_finite());
        p.get_mut(w).data_mut()[0] = f64::NAN;
        assert!(p.has_non_finite());
    }
}
