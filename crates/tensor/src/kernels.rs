//! Cache-blocked, register-tiled matmul micro-kernels.
//!
//! Both rank-2 products (`A·B` and `A·Bᵀ`) funnel into one blocked
//! kernel in the classic three-level scheme: panels of `KC` inner-dim
//! steps, blocks of `MC` output rows, and an `MR×NR` register tile
//! updated by an inner loop over the packed panels. The `A` block is
//! packed `MR`-interleaved and the `B` panel `NR`-wide so the micro-
//! kernel streams both operands contiguously (packing is also where the
//! `Bᵀ` layout is absorbed — the micro-kernel never knows).
//!
//! ## Determinism contract (DESIGN.md §11)
//!
//! Every output element is accumulated as **one left fold in ascending
//! inner-dimension order** — `((0 + t₀) + t₁) + …` — exactly the order
//! of the textbook triple loop, using separate multiply and add (no
//! FMA). Blocking changes *when* each term is added, never the order
//! within an element's chain, so the blocked kernel is bit-identical to
//! the naive reference on every input, including non-finite values.
//! Parallelism splits **output rows** across workers; each element is
//! still computed by exactly one fold on one worker, so results are
//! bit-identical for any [`Threads`] value (pinned by the mb-check
//! property suite and the cross-thread-count determinism tests).
//!
//! Unlike the pre-blocking kernel, zero entries of `A` are *not*
//! skipped: `0·∞` and `0·NaN` now propagate NaN per IEEE 754 instead of
//! silently contributing nothing, which is required for the exact-
//! equality contract above.

use crate::tensor::Tensor;
use mb_par::{par_chunks_mut, Threads};

/// Register-tile rows: independent accumulator chains per tile row.
const MR: usize = 4;
/// Register-tile columns: the SIMD-parallel dimension.
const NR: usize = 16;
/// Inner-dimension panel length; one `KC×NR` B panel stays in L1.
const KC: usize = 256;
/// Output-row block height; one `MC×KC` packed A block stays in L2.
const MC: usize = 128;

/// Below this the packing overhead outweighs the cache savings and the
/// plain triple loop wins; both paths produce identical bits, so the
/// dispatch is a pure perf heuristic.
fn use_blocked(m: usize, k: usize, n: usize) -> bool {
    m >= MR && n >= NR && k >= 16 && m * k * n >= 32 * 32 * 32
}

/// `B` element at inner index `p`, column `j`, for either layout.
/// `ldb` is the row stride of the stored matrix: `B` is `k×n` when
/// `bt == false` and `n×k` when `bt == true`.
#[inline]
fn b_at(b: &[f64], ldb: usize, p: usize, j: usize, bt: bool) -> f64 {
    if bt {
        b[j * ldb + p]
    } else {
        b[p * ldb + j]
    }
}

/// The naive reference: textbook loops, one ascending-`p` fold per
/// output element. Used below the blocking threshold and by the
/// property tests as the semantic reference.
fn simple(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize, bt: bool) {
    if bt {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                out[i * n + j] = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        }
    } else {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Blocked product over a band of output rows: `out[0..rows][0..n] +=
/// a[0..rows][0..k] · B`, where `B` is `k×n` (`bt == false`) or `n×k`
/// interpreted as transposed (`bt == true`). `out` must start zeroed;
/// the parallel wrapper hands each worker a disjoint band.
fn blocked_rows(a: &[f64], b: &[f64], out: &mut [f64], rows: usize, k: usize, n: usize, bt: bool) {
    let ldb = if bt { k } else { n };
    let mut apack = vec![0.0; MC * KC];
    let mut bpack = vec![0.0; KC * NR];
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for ic in (0..rows).step_by(MC) {
            let mc = MC.min(rows - ic);
            // Pack full MR-panels of the A block, interleaved so the
            // micro-kernel reads one `[f64; MR]` per inner step. Tail
            // rows (mc % MR) stay unpacked and take the scalar path.
            let full_panels = mc / MR;
            {
                let mut w = 0;
                for panel in 0..full_panels {
                    let r0 = ic + panel * MR;
                    for p in 0..kc {
                        for ii in 0..MR {
                            apack[w] = a[(r0 + ii) * k + pc + p];
                            w += 1;
                        }
                    }
                }
            }
            for jc in (0..n).step_by(NR) {
                let nr = NR.min(n - jc);
                if nr == NR {
                    for p in 0..kc {
                        for (jj, slot) in bpack[p * NR..(p + 1) * NR].iter_mut().enumerate() {
                            *slot = b_at(b, ldb, pc + p, jc + jj, bt);
                        }
                    }
                }
                let mut ir = 0;
                while ir + MR <= mc {
                    let i0 = ic + ir;
                    if nr == NR {
                        // MR×NR micro-kernel over packed panels.
                        let mut acc = [[0.0f64; NR]; MR];
                        for (ii, row) in acc.iter_mut().enumerate() {
                            row.copy_from_slice(&out[(i0 + ii) * n + jc..(i0 + ii) * n + jc + NR]);
                        }
                        let panel = ir / MR;
                        let ap = &apack[panel * (kc * MR)..(panel + 1) * (kc * MR)];
                        for (ach, bch) in ap.chunks_exact(MR).zip(bpack.chunks_exact(NR).take(kc)) {
                            let av: &[f64; MR] = ach.try_into().expect("MR chunk");
                            let bv: &[f64; NR] = bch.try_into().expect("NR chunk");
                            for (ii, row) in acc.iter_mut().enumerate() {
                                for (jj, slot) in row.iter_mut().enumerate() {
                                    *slot += av[ii] * bv[jj];
                                }
                            }
                        }
                        for (ii, row) in acc.iter().enumerate() {
                            out[(i0 + ii) * n + jc..(i0 + ii) * n + jc + NR].copy_from_slice(row);
                        }
                    } else {
                        // Column tail: scalar folds, same order.
                        for ii in 0..MR {
                            for jj in 0..nr {
                                let mut acc = out[(i0 + ii) * n + jc + jj];
                                for p in 0..kc {
                                    acc += a[(i0 + ii) * k + pc + p]
                                        * b_at(b, ldb, pc + p, jc + jj, bt);
                                }
                                out[(i0 + ii) * n + jc + jj] = acc;
                            }
                        }
                    }
                    ir += MR;
                }
                // Row tail: scalar folds, same order.
                while ir < mc {
                    let i0 = ic + ir;
                    for jj in 0..nr {
                        let mut acc = out[i0 * n + jc + jj];
                        for p in 0..kc {
                            acc += a[i0 * k + pc + p] * b_at(b, ldb, pc + p, jc + jj, bt);
                        }
                        out[i0 * n + jc + jj] = acc;
                    }
                    ir += 1;
                }
            }
        }
    }
}

/// Shared entry point for both products. `bt` selects `A·Bᵀ`.
pub(crate) fn matmul_impl(a: &Tensor, b: &Tensor, bt: bool, threads: Threads) -> Tensor {
    let op = if bt { "matmul_t" } else { "matmul" };
    assert_eq!(a.rank(), 2, "{op} lhs rank {:?}", a.shape());
    assert_eq!(b.rank(), 2, "{op} rhs rank {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = if bt { (b.shape()[0], b.shape()[1]) } else { (b.shape()[1], b.shape()[0]) };
    if bt {
        assert_eq!(k, k2, "matmul_t: {:?} @ {:?}^T", a.shape(), b.shape());
    } else {
        assert_eq!(k, k2, "matmul: {:?} @ {:?}", a.shape(), b.shape());
    }
    let mut out = vec![0.0; m * n];
    let (ad, bd) = (a.data(), b.data());
    if !use_blocked(m, k, n) {
        simple(ad, bd, &mut out, m, k, n, bt);
    } else if threads.is_single() || m < 2 * MC {
        blocked_rows(ad, bd, &mut out, m, k, n, bt);
    } else {
        // Row-band parallelism: band height is MC — fixed by the
        // blocking scheme, never by the worker count — and each band's
        // elements are computed wholly within one worker.
        par_chunks_mut(threads, &mut out, MC * n, |band, out_band| {
            let i0 = band * MC;
            let rows = out_band.len() / n;
            blocked_rows(&ad[i0 * k..(i0 + rows) * k], bd, out_band, rows, k, n, bt);
        });
    }
    Tensor::from_vec(vec![m, n], out)
}

/// The naive reference kernel, exposed for the property suite and the
/// kernels benchmark: bit-for-bit the semantics `matmul`/`matmul_t`
/// promise, with none of the blocking.
pub fn matmul_reference(a: &Tensor, b: &Tensor, bt: bool) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = if bt { b.shape()[0] } else { b.shape()[1] };
    let mut out = vec![0.0; m * n];
    simple(a.data(), b.data(), &mut out, m, k, n, bt);
    Tensor::from_vec(vec![m, n], out)
}

/// Shared dispatch for the quantized scoring kernels: one independent
/// ascending-column fold per row, rows split across workers in fixed
/// `MC`-row chunks (the matmul band height), so which worker scores a
/// row never changes the row's accumulation chain.
fn score_rows_chunked<F>(rows: usize, threads: Threads, f: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    if threads.is_single() || rows < 2 * MC {
        return (0..rows).map(f).collect();
    }
    mb_par::par_chunk_ranges(threads, rows, MC, |_, r| r.map(&f).collect::<Vec<f64>>()).concat()
}

/// Dot product of an `f64` query against every row of an f16-stored
/// `rows × cols` table, dequantizing each element on the fly — no
/// table-sized allocation. Bit-identical at any thread count.
pub fn score_all_f16(
    table: &[u16],
    rows: usize,
    cols: usize,
    query: &[f64],
    threads: Threads,
) -> Vec<f64> {
    assert_eq!(table.len(), rows * cols, "score_all_f16: table size mismatch");
    assert_eq!(query.len(), cols, "score_all_f16: query dim mismatch");
    score_rows_chunked(rows, threads, |i| {
        table[i * cols..(i + 1) * cols]
            .iter()
            .zip(query)
            .map(|(&h, &q)| crate::quant::f16_to_f64(h) * q)
            .sum()
    })
}

/// Dot product of an int8-quantized query against every row of a
/// per-row-scaled int8 table. Products accumulate **exactly** in `i64`
/// (no per-element dequantization); each row's sum is scaled back to
/// `f64` in one final multiplication, so the only float rounding is
/// that last step. Bit-identical at any thread count.
pub fn score_all_i8(
    table: &[i8],
    scales: &[f64],
    rows: usize,
    cols: usize,
    query: &[i8],
    query_scale: f64,
    threads: Threads,
) -> Vec<f64> {
    assert_eq!(table.len(), rows * cols, "score_all_i8: table size mismatch");
    assert_eq!(scales.len(), rows, "score_all_i8: scales length mismatch");
    assert_eq!(query.len(), cols, "score_all_i8: query dim mismatch");
    score_rows_chunked(rows, threads, |i| {
        let acc: i64 = table[i * cols..(i + 1) * cols]
            .iter()
            .zip(query)
            .map(|(&t, &q)| i64::from(t) * i64::from(q))
            .sum();
        acc as f64 * (scales[i] * query_scale)
    })
}

/// Queries per fused-retrieval scoring block (DESIGN.md §16). The
/// block-dot kernels below carry a specialization unrolled for exactly
/// this width, so the fused `top_k_batch` paths in `mb-encoders` and
/// `mb-store` block their queries at the same number.
pub const DOT_BLOCK: usize = 8;

/// Widest int8 row whose per-element products (each at most
/// `127 * 127`) are guaranteed to accumulate in `i32` without
/// overflow — up to this width an `i32` fold sums to exactly the same
/// integer as the reference `i64` fold in [`score_all_i8`].
pub const I8_EXACT_I32_COLS: usize = (i32::MAX as usize) / (127 * 127);

/// Fixed-width tile of [`dot_block_f64`]: with `N` known at compile
/// time the accumulators live in registers and the slot loop fully
/// unrolls, so every width `2..=DOT_BLOCK` gets its own tight loop
/// instead of a dynamic inner trip count the vectorizer gives up on.
#[inline]
fn dot_tile_f64<const N: usize>(v: &[f64], qt: &[f64], acc: &mut [f64]) {
    let mut a = [0.0f64; N];
    for (&x, q) in v.iter().zip(qt.chunks_exact(N)) {
        for (slot, &qv) in a.iter_mut().zip(q) {
            *slot += x * qv;
        }
    }
    acc[..N].copy_from_slice(&a);
}

/// Multi-query dot: `acc[s] = Σ_j v[j] * qt[j * nq + s]` for every
/// query slot `s`, where `qt` is the query block transposed to
/// `[v.len(), nq]` row-major. Each slot's sum is one ascending-`j`
/// fold from `0.0` with separate multiply and add (no FMA) —
/// bit-identical to the serial `v · q_s` dot — while the `nq`
/// independent chains break the float latency chain a lone dot product
/// is stuck behind. This is what makes fused retrieval faster than
/// per-query scoring. `nq == 1` degenerates to exactly the serial fold
/// so singleton groups pay no tile overhead.
#[inline]
pub fn dot_block_f64(v: &[f64], qt: &[f64], nq: usize, acc: &mut [f64]) {
    debug_assert_eq!(qt.len(), v.len() * nq, "dot_block_f64: qt shape");
    debug_assert_eq!(acc.len(), nq, "dot_block_f64: acc length");
    match nq {
        1 => acc[0] = v.iter().zip(qt).map(|(&x, &q)| x * q).sum(),
        2 => dot_tile_f64::<2>(v, qt, acc),
        3 => dot_tile_f64::<3>(v, qt, acc),
        4 => dot_tile_f64::<4>(v, qt, acc),
        5 => dot_tile_f64::<5>(v, qt, acc),
        6 => dot_tile_f64::<6>(v, qt, acc),
        7 => dot_tile_f64::<7>(v, qt, acc),
        8 => dot_tile_f64::<8>(v, qt, acc),
        _ => {
            acc.fill(0.0);
            for (&x, q) in v.iter().zip(qt.chunks_exact(nq.max(1))) {
                for (slot, &qv) in acc.iter_mut().zip(q) {
                    *slot += x * qv;
                }
            }
        }
    }
}

/// Contiguous int8 dot with an `i32` fold — the exact integer the
/// reference `i64` fold of [`score_all_i8`] produces whenever the row
/// is at most [`I8_EXACT_I32_COLS`] wide (callers guard). Integer
/// addition is associative, so this vectorizes freely; it is the
/// per-member kernel the fused IVF scan uses where the interleaved
/// tiles lose to plain SIMD dots.
#[inline]
pub fn dot_i8_i32(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// `i64` companion of [`dot_i8_i32`] for rows wider than
/// [`I8_EXACT_I32_COLS`] — the reference fold itself.
#[inline]
pub fn dot_i8_i64(a: &[i8], b: &[i8]) -> i64 {
    a.iter().zip(b).map(|(&x, &y)| i64::from(x) * i64::from(y)).sum()
}

/// Fixed-width tile of [`dot_block_i8`] — see [`dot_tile_f64`].
#[inline]
fn dot_tile_i8<const N: usize>(row: &[i8], qt: &[i8], acc: &mut [i32]) {
    let mut a = [0i32; N];
    for (&x, q) in row.iter().zip(qt.chunks_exact(N)) {
        let xv = i32::from(x);
        for (slot, &qv) in a.iter_mut().zip(q) {
            *slot += xv * i32::from(qv);
        }
    }
    acc[..N].copy_from_slice(&a);
}

/// Multi-query int8 dot: `acc[s] = Σ_j row[j] * qt[j * nq + s]` in
/// `i32`. Integer addition is associative, so each slot equals the
/// reference `i64` fold of [`score_all_i8`] exactly whenever the row is
/// at most [`I8_EXACT_I32_COLS`] wide — callers guard on that and fall
/// back to [`dot_block_i8_wide`] beyond it.
#[inline]
pub fn dot_block_i8(row: &[i8], qt: &[i8], nq: usize, acc: &mut [i32]) {
    debug_assert_eq!(qt.len(), row.len() * nq, "dot_block_i8: qt shape");
    debug_assert_eq!(acc.len(), nq, "dot_block_i8: acc length");
    match nq {
        1 => acc[0] = row.iter().zip(qt).map(|(&x, &q)| i32::from(x) * i32::from(q)).sum(),
        2 => dot_tile_i8::<2>(row, qt, acc),
        3 => dot_tile_i8::<3>(row, qt, acc),
        4 => dot_tile_i8::<4>(row, qt, acc),
        5 => dot_tile_i8::<5>(row, qt, acc),
        6 => dot_tile_i8::<6>(row, qt, acc),
        7 => dot_tile_i8::<7>(row, qt, acc),
        8 => dot_tile_i8::<8>(row, qt, acc),
        _ => {
            acc.fill(0);
            for (&x, q) in row.iter().zip(qt.chunks_exact(nq.max(1))) {
                let xv = i32::from(x);
                for (slot, &qv) in acc.iter_mut().zip(q) {
                    *slot += xv * i32::from(qv);
                }
            }
        }
    }
}

/// Fixed-width tile of [`dot_block_i8_wide`] — see [`dot_tile_f64`].
#[inline]
fn dot_tile_i8_wide<const N: usize>(row: &[i8], qt: &[i8], acc: &mut [i64]) {
    let mut a = [0i64; N];
    for (&x, q) in row.iter().zip(qt.chunks_exact(N)) {
        let xv = i64::from(x);
        for (slot, &qv) in a.iter_mut().zip(q) {
            *slot += xv * i64::from(qv);
        }
    }
    acc[..N].copy_from_slice(&a);
}

/// `i64` fallback of [`dot_block_i8`] for rows wider than
/// [`I8_EXACT_I32_COLS`] — same arithmetic as the reference fold at any
/// width.
#[inline]
pub fn dot_block_i8_wide(row: &[i8], qt: &[i8], nq: usize, acc: &mut [i64]) {
    debug_assert_eq!(qt.len(), row.len() * nq, "dot_block_i8_wide: qt shape");
    debug_assert_eq!(acc.len(), nq, "dot_block_i8_wide: acc length");
    match nq {
        1 => acc[0] = row.iter().zip(qt).map(|(&x, &q)| i64::from(x) * i64::from(q)).sum(),
        2 => dot_tile_i8_wide::<2>(row, qt, acc),
        3 => dot_tile_i8_wide::<3>(row, qt, acc),
        4 => dot_tile_i8_wide::<4>(row, qt, acc),
        5 => dot_tile_i8_wide::<5>(row, qt, acc),
        6 => dot_tile_i8_wide::<6>(row, qt, acc),
        7 => dot_tile_i8_wide::<7>(row, qt, acc),
        8 => dot_tile_i8_wide::<8>(row, qt, acc),
        _ => {
            acc.fill(0);
            for (&x, q) in row.iter().zip(qt.chunks_exact(nq.max(1))) {
                let xv = i64::from(x);
                for (slot, &qv) in acc.iter_mut().zip(q) {
                    *slot += xv * i64::from(qv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(shape: [usize; 2], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let data: Vec<f64> = (0..shape[0] * shape[1])
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(shape.to_vec(), data)
    }

    fn assert_bits_eq(x: &Tensor, y: &Tensor) {
        assert_eq!(x.shape(), y.shape());
        for (i, (a, b)) in x.data().iter().zip(y.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn blocked_matches_reference_on_blocky_and_ragged_shapes() {
        // Shapes straddling every tile boundary: exact multiples,
        // one-off tails in each dimension, and sub-tile sizes.
        let shapes: &[([usize; 2], [usize; 2])] = &[
            ([4, 16], [16, 16]),
            ([5, 17], [17, 19]),
            ([128, 256], [256, 32]),
            ([129, 257], [257, 33]),
            ([131, 300], [300, 47]),
            ([257, 64], [64, 17]),
            ([3, 100], [100, 100]),
            ([100, 7], [7, 100]),
        ];
        for (i, &(sa, sb)) in shapes.iter().enumerate() {
            let a = fill(sa, i as u64 + 1);
            let b = fill(sb, i as u64 + 101);
            let bt_b = fill([sb[1], sb[0]], i as u64 + 201);
            for t in [1, 2, 4] {
                let got = matmul_impl(&a, &b, false, Threads::new(t));
                assert_bits_eq(&got, &matmul_reference(&a, &b, false));
                let got_t = matmul_impl(&a, &bt_b, true, Threads::new(t));
                assert_bits_eq(&got_t, &matmul_reference(&a, &bt_b, true));
            }
        }
    }

    #[test]
    fn non_finite_values_propagate_identically() {
        let mut a = fill([40, 40], 7);
        let mut b = fill([40, 40], 8);
        a.data_mut()[3] = 0.0;
        b.data_mut()[3 * 40 + 5] = f64::INFINITY;
        a.data_mut()[41] = f64::NAN;
        b.data_mut()[100] = f64::NEG_INFINITY;
        for t in [1, 2, 4] {
            let got = matmul_impl(&a, &b, false, Threads::new(t));
            let want = matmul_reference(&a, &b, false);
            for (x, y) in got.data().iter().zip(want.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn parallel_bands_are_bit_identical_across_thread_counts() {
        let a = fill([300, 64], 42);
        let b = fill([64, 96], 43);
        let base = matmul_impl(&a, &b, false, Threads::single());
        for t in [2, 3, 4, 8] {
            assert_bits_eq(&matmul_impl(&a, &b, false, Threads::new(t)), &base);
        }
    }

    #[test]
    fn block_dots_match_serial_folds_bit_for_bit() {
        // Every block width (including the unrolled DOT_BLOCK tile)
        // must reproduce the serial ascending-j fold exactly, element
        // order and all — on data rich in near-ties and signed zeros.
        let dim = 37;
        for nq in [1usize, 2, 5, DOT_BLOCK, 11] {
            let v = fill([1, dim], 900 + nq as u64);
            let queries = fill([nq, dim], 1000 + nq as u64);
            let mut qt = vec![0.0f64; dim * nq];
            for s in 0..nq {
                for j in 0..dim {
                    qt[j * nq + s] = queries.at(s, j);
                }
            }
            let mut acc = vec![0.0f64; nq];
            dot_block_f64(v.data(), &qt, nq, &mut acc);
            for s in 0..nq {
                let want: f64 = v.data().iter().zip(queries.row(s)).map(|(a, b)| a * b).sum();
                assert_eq!(acc[s].to_bits(), want.to_bits(), "f64 slot {s} of {nq}");
            }

            let row: Vec<i8> = v
                .data()
                .iter()
                .enumerate()
                .map(|(i, &x)| ((x * 100.0) as i8).wrapping_add(i as i8))
                .collect();
            let qi8: Vec<Vec<i8>> = (0..nq)
                .map(|s| queries.row(s).iter().map(|&x| (x * 127.0) as i8).collect())
                .collect();
            let mut qt8 = vec![0i8; dim * nq];
            for s in 0..nq {
                for j in 0..dim {
                    qt8[j * nq + s] = qi8[s][j];
                }
            }
            let mut acc32 = vec![0i32; nq];
            dot_block_i8(&row, &qt8, nq, &mut acc32);
            let mut acc64 = vec![0i64; nq];
            dot_block_i8_wide(&row, &qt8, nq, &mut acc64);
            for s in 0..nq {
                let want: i64 =
                    row.iter().zip(&qi8[s]).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum();
                assert_eq!(i64::from(acc32[s]), want, "i8/i32 slot {s} of {nq}");
                assert_eq!(acc64[s], want, "i8/i64 slot {s} of {nq}");
            }
        }
        const { assert!(32 <= I8_EXACT_I32_COLS) };
    }

    #[test]
    fn quantized_scoring_is_bit_identical_across_thread_counts() {
        // 300 rows crosses the 2*MC parallel-dispatch threshold.
        let table = fill([300, 32], 11);
        let query = fill([1, 32], 12);
        let f16: Vec<u16> = table.data().iter().map(|&v| crate::quant::f16_from_f64(v)).collect();
        let base = score_all_f16(&f16, 300, 32, query.data(), Threads::single());
        assert_eq!(base.len(), 300);
        let (i8s, scales): (Vec<Vec<i8>>, Vec<f64>) =
            (0..300).map(|i| crate::quant::quantize_i8(table.row(i))).unzip();
        let i8_table: Vec<i8> = i8s.concat();
        let (q8, q_scale) = crate::quant::quantize_i8(query.data());
        let base_i8 = score_all_i8(&i8_table, &scales, 300, 32, &q8, q_scale, Threads::single());
        for t in [2, 3, 4, 7] {
            let par = score_all_f16(&f16, 300, 32, query.data(), Threads::new(t));
            for (x, y) in base.iter().zip(&par) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            let par8 = score_all_i8(&i8_table, &scales, 300, 32, &q8, q_scale, Threads::new(t));
            for (x, y) in base_i8.iter().zip(&par8) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
