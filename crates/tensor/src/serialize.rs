//! Plain-text checkpoint format for [`Params`].
//!
//! The format is deliberately simple and diff-able:
//!
//! ```text
//! mb-params v1
//! param <name> <rank> <dim0> <dim1> ...
//! <value> <value> ...
//! ```
//!
//! Values are written with `{:e}` (full round-trip precision for f64 via
//! 17 significant digits), one line per parameter. The body encoding
//! (everything after the magic line) is shared with the sectioned
//! `mb-params v2` format in [`crate::checkpoint`].

use crate::params::Params;
use crate::tensor::Tensor;
use mb_common::{Error, Result};

const MAGIC: &str = "mb-params v1";

/// Append the parameter body (header + value lines per parameter, no
/// magic line) to `out`.
///
/// # Errors
/// [`Error::Diverged`] if any value is NaN or infinite — a checkpoint
/// containing non-finite parameters could never be resumed into a
/// healthy run, so it is rejected at save time rather than discovered
/// at load time.
pub(crate) fn write_params_body(params: &Params, out: &mut String) -> Result<()> {
    for (name, tensor) in params.iter() {
        if tensor.has_non_finite() {
            return Err(Error::Diverged(format!(
                "refusing to serialize non-finite values in param {name:?}"
            )));
        }
        out.push_str("param ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&tensor.rank().to_string());
        for d in tensor.shape() {
            out.push(' ');
            out.push_str(&d.to_string());
        }
        out.push('\n');
        let mut first = true;
        for v in tensor.data() {
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(&format!("{v:.17e}"));
        }
        out.push('\n');
    }
    Ok(())
}

/// Parse a parameter body produced by [`write_params_body`].
pub(crate) fn parse_params_body(s: &str) -> Result<Params> {
    let mut lines = s.lines();
    let mut params = Params::new();
    while let Some(header) = lines.next() {
        let header = header.trim();
        if header.is_empty() {
            continue;
        }
        let mut parts = header.split_whitespace();
        match parts.next() {
            Some("param") => {}
            other => return Err(Error::Parse(format!("expected 'param', got {other:?}"))),
        }
        let name = parts.next().ok_or_else(|| Error::Parse("param line missing name".into()))?;
        let rank: usize = parts
            .next()
            .ok_or_else(|| Error::Parse("param line missing rank".into()))?
            .parse()
            .map_err(|e| Error::Parse(format!("bad rank: {e}")))?;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d: usize = parts
                .next()
                .ok_or_else(|| Error::Parse(format!("param {name}: missing dimension")))?
                .parse()
                .map_err(|e| Error::Parse(format!("param {name}: bad dimension: {e}")))?;
            shape.push(d);
        }
        if parts.next().is_some() {
            return Err(Error::Parse(format!("param {name}: trailing tokens on header")));
        }
        let numel: usize = shape.iter().product();
        let data_line =
            lines.next().ok_or_else(|| Error::Parse(format!("param {name}: missing data line")))?;
        let data: Vec<f64> = data_line
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|e| Error::Parse(format!("param {name}: bad value {t:?}: {e}")))
            })
            .collect::<Result<_>>()?;
        if data.len() != numel {
            return Err(Error::Parse(format!(
                "param {name}: shape {shape:?} needs {numel} values, found {}",
                data.len()
            )));
        }
        params.add(name, Tensor::from_vec(shape, data));
    }
    Ok(params)
}

/// Serialize parameters to the text format.
///
/// # Errors
/// [`Error::Diverged`] if any parameter contains NaN or infinite
/// values; such state is rejected at save time.
pub fn to_string(params: &Params) -> Result<String> {
    let mut out = String::from(MAGIC);
    out.push('\n');
    write_params_body(params, &mut out)?;
    Ok(out)
}

/// Parse parameters from the text format.
///
/// # Errors
/// Returns [`Error::Parse`] on any structural or numeric problem.
pub fn from_string(s: &str) -> Result<Params> {
    let mut lines = s.lines();
    let magic = lines.next().ok_or_else(|| Error::Parse("empty checkpoint".into()))?;
    if magic.trim() != MAGIC {
        return Err(Error::Parse(format!("bad magic line {magic:?}")));
    }
    let body_start = s.find('\n').map(|i| i + 1).unwrap_or(s.len());
    // mb-lint: allow(indexing) -- body_start is a found newline + 1 or len(), both <= len()
    parse_params_body(&s[body_start..])
}

/// Write parameters to a file (atomically: temp sibling + rename).
///
/// # Errors
/// [`Error::Diverged`] for non-finite values, [`Error::Io`] on write
/// failure.
pub fn save(params: &Params, path: &std::path::Path) -> Result<()> {
    mb_common::storage::atomic_write(path, to_string(params)?.as_bytes())
}

/// Read parameters from a file.
///
/// # Errors
/// Returns [`Error::Parse`] on IO or format problems.
pub fn load(path: &std::path::Path) -> Result<Params> {
    let s = std::fs::read_to_string(path)
        .map_err(|e| Error::Parse(format!("reading {}: {e}", path.display())))?;
    from_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::Rng;

    fn sample() -> Params {
        let mut rng = Rng::seed_from_u64(42);
        let mut p = Params::new();
        p.add("emb", Tensor::randn(vec![4, 3], 0.0, 1.0, &mut rng));
        p.add("w1", Tensor::randn(vec![3, 2], 0.0, 0.3, &mut rng));
        p.add("b1", Tensor::vector(&[0.0, -1.5]));
        p.add("scalar", Tensor::scalar(std::f64::consts::PI));
        p
    }

    #[test]
    fn round_trip_is_exact() {
        let p = sample();
        let s = to_string(&p).unwrap();
        let q = from_string(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn round_trip_preserves_extreme_values() {
        let mut p = Params::new();
        p.add("x", Tensor::vector(&[1e-308, -1e308, 0.0, f64::MIN_POSITIVE, 1.0 / 3.0]));
        let q = from_string(&to_string(&p).unwrap()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_non_finite_values_at_save_time() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut p = Params::new();
            p.add("ok", Tensor::vector(&[1.0]));
            p.add("poisoned", Tensor::vector(&[0.5, bad]));
            let err = to_string(&p).unwrap_err();
            assert!(matches!(err, Error::Diverged(_)), "expected Diverged for {bad}, got {err:?}");
            assert!(err.to_string().contains("poisoned"));
            let dir = std::env::temp_dir().join("mb_tensor_nonfinite_test");
            let path = dir.join("ckpt.txt");
            assert!(save(&p, &path).is_err());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(from_string("nope\n").is_err());
        assert!(from_string("").is_err());
    }

    #[test]
    fn rejects_wrong_value_count() {
        let s = "mb-params v1\nparam w 1 3\n1.0 2.0\n";
        let err = from_string(s).unwrap_err();
        assert!(err.to_string().contains("needs 3 values"));
    }

    #[test]
    fn rejects_garbage_values() {
        let s = "mb-params v1\nparam w 1 1\nhello\n";
        assert!(from_string(s).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mb_tensor_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.txt");
        let p = sample();
        save(&p, &path).unwrap();
        let q = load(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(&path).ok();
    }
}
