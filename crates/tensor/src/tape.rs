//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation applied to [`Var`]s (handles into
//! the tape) and computes exact gradients with one reverse sweep. The op
//! set is purpose-built for the MetaBLINK reproduction and includes
//! fused operators for the paper's losses, which keeps graphs tiny and
//! backward passes cheap — important because the meta-learning step in
//! `mb-core` runs one backward pass *per synthetic example* to obtain
//! the per-example gradients of Eq. 12.
//!
//! Gradients are accumulated in node-creation order reversed, which is a
//! valid topological order because an op can only reference previously
//! created vars.

use crate::tensor::Tensor;
use mb_common::util::log_sum_exp;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The recorded operation producing a node's value.
#[derive(Debug, Clone)]
enum Op {
    /// An input (parameter or constant); has no parents.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise (Hadamard) product.
    MulElem(Var, Var),
    /// Multiply by a compile-time constant.
    Scale(Var, f64),
    /// Add a constant to every element (the constant is not needed by
    /// the backward pass; it is kept for graph introspection).
    AddScalar(Var, #[allow(dead_code)] f64),
    /// `a @ b` for rank-2 operands.
    Matmul(Var, Var),
    /// `a @ bᵀ` — the bi-encoder score matrix kernel.
    MatmulT(Var, Var),
    /// `x @ w + b` with `b` broadcast over rows.
    Linear {
        x: Var,
        w: Var,
        b: Var,
    },
    Tanh(Var),
    Relu(Var),
    Sigmoid(Var),
    /// Mean over all elements, producing a scalar.
    MeanAll(Var),
    /// Sum over all elements, producing a scalar.
    SumAll(Var),
    /// Row-wise L2 normalisation with an epsilon floor.
    RowL2Normalize {
        x: Var,
        eps: f64,
    },
    /// Mean-pooled embedding-bag lookup: row i of the output is the mean
    /// of `table` rows listed in `bags[i]` (zero vector for empty bags).
    BagEmbed {
        table: Var,
        bags: Vec<Vec<u32>>,
    },
    /// Row-wise dot product of two `[n, d]` tensors, producing `[n]`.
    RowsDot(Var, Var),
    /// The paper's Eq. 6 in-batch negative loss over an `[n, n]` score
    /// matrix whose diagonal holds the gold scores; produces `[n]`
    /// per-example losses. When `exclude_gold` is true the denominator
    /// omits the gold entity (as printed in the paper).
    InBatchNegLoss {
        scores: Var,
        exclude_gold: bool,
    },
    /// Per-row softmax cross-entropy: `[n, k]` logits and a gold column
    /// per row; produces `[n]` losses. Used by the cross-encoder ranker.
    SoftmaxCrossEntropyRows {
        logits: Var,
        targets: Vec<usize>,
    },
    /// Numerically-stable binary cross-entropy with logits; elementwise,
    /// produces a tensor of per-element losses.
    BceWithLogits {
        logits: Var,
        targets: Vec<f64>,
    },
    /// `Σᵢ wᵢ xᵢ` over a rank-1 tensor, producing a scalar. This is the
    /// weighted synthetic-batch loss of Algorithm 1 (lines 4 and 10).
    WeightedSum {
        xs: Var,
        weights: Vec<f64>,
    },
    /// Pick a single element of a rank-1 tensor as a scalar — used to
    /// extract one example's loss for per-example gradients.
    Gather {
        xs: Var,
        index: usize,
    },
    /// View with a different shape (same element count, same order).
    Reshape {
        x: Var,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
///
/// Indexable by the [`Var`]s of the tape that produced it. Vars that do
/// not influence the loss have `None` gradients.
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss with respect to `v`, if `v` influences it.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `v`, or a zero tensor of the given
    /// shape when `v` does not influence the loss.
    pub fn get_or_zeros(&self, v: Var, shape: &[usize]) -> Tensor {
        match self.get(v) {
            Some(g) => g.clone(),
            None => Tensor::zeros(shape.to_vec()),
        }
    }
}

/// An autodiff tape. See the module docs for the programming model.
///
/// # Examples
///
/// ```
/// use mb_tensor::{Tape, Tensor};
///
/// // d/dx sum((x + x)²) = 8x
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::vector(&[1.0, -2.0]));
/// let two_x = tape.add(x, x);
/// let sq = tape.mul_elem(two_x, two_x);
/// let loss = tape.sum_all(sq);
/// let grads = tape.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[8.0, -16.0]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    threads: mb_par::Threads,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// An empty tape whose matmul-shaped ops (forward and backward)
    /// split output rows across `threads` workers. Bit-identical to a
    /// single-threaded tape for any worker count (DESIGN.md §11).
    pub fn with_threads(threads: mb_par::Threads) -> Self {
        Tape { nodes: Vec::new(), threads }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record an input (parameter or constant) node.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    fn val(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    // ------------------------------------------------------------------
    // Forward ops
    // ------------------------------------------------------------------

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).add(self.val(b));
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).sub(self.val(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise `a * b`.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).mul(self.val(b));
        self.push(value, Op::MulElem(a, b))
    }

    /// `k * a` for a constant `k`.
    pub fn scale(&mut self, a: Var, k: f64) -> Var {
        let value = self.val(a).scale(k);
        self.push(value, Op::Scale(a, k))
    }

    /// `a + k` elementwise for a constant `k`.
    pub fn add_scalar(&mut self, a: Var, k: f64) -> Var {
        let value = self.val(a).map(|x| x + k);
        self.push(value, Op::AddScalar(a, k))
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).matmul_with(self.val(b), self.threads);
        self.push(value, Op::Matmul(a, b))
    }

    /// Matrix product `a @ bᵀ`.
    pub fn matmul_t(&mut self, a: Var, b: Var) -> Var {
        let value = self.val(a).matmul_t_with(self.val(b), self.threads);
        self.push(value, Op::MatmulT(a, b))
    }

    /// Affine map `x @ w + b` (bias broadcast over rows).
    ///
    /// # Panics
    /// Panics unless `x: [n, f]`, `w: [f, o]`, `b: [o]`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let xv = self.val(x);
        let wv = self.val(w);
        let bv = self.val(b);
        assert_eq!(bv.rank(), 1, "linear: bias must be rank-1, got {:?}", bv.shape());
        assert_eq!(
            wv.shape()[1],
            bv.shape()[0],
            "linear: w {:?} vs b {:?}",
            wv.shape(),
            bv.shape()
        );
        let mut y = xv.matmul_with(wv, self.threads);
        let o = bv.shape()[0];
        for i in 0..y.rows() {
            for (yj, bj) in y.row_mut(i).iter_mut().zip(&bv.data()[..o]) {
                *yj += *bj;
            }
        }
        self.push(y, Op::Linear { x, w, b })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.val(a).map(f64::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.val(a).map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.val(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Mean over all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.val(a).mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.val(a).sum());
        self.push(value, Op::SumAll(a))
    }

    /// Row-wise L2 normalisation: each row is divided by
    /// `max(‖row‖₂, eps)`.
    pub fn row_l2_normalize(&mut self, x: Var, eps: f64) -> Var {
        let xv = self.val(x);
        assert_eq!(xv.rank(), 2, "row_l2_normalize: rank-2 required, got {:?}", xv.shape());
        let mut y = xv.clone();
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(eps);
            for v in row {
                *v /= norm;
            }
        }
        self.push(y, Op::RowL2Normalize { x, eps })
    }

    /// Mean-pooled embedding-bag lookup.
    ///
    /// `table` must be a `[vocab, dim]` leaf/param; `bags[i]` lists the
    /// token ids of example `i`. Output is `[bags.len(), dim]`; empty
    /// bags yield zero rows.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn bag_embed(&mut self, table: Var, bags: Vec<Vec<u32>>) -> Var {
        let tv = self.val(table);
        assert_eq!(tv.rank(), 2, "bag_embed: table must be rank-2, got {:?}", tv.shape());
        let (vocab, dim) = (tv.shape()[0], tv.shape()[1]);
        let mut out = Tensor::zeros(vec![bags.len(), dim]);
        for (i, bag) in bags.iter().enumerate() {
            if bag.is_empty() {
                continue;
            }
            let inv = 1.0 / bag.len() as f64;
            let row = out.row_mut(i);
            for &id in bag {
                let id = id as usize;
                assert!(id < vocab, "bag_embed: token id {id} out of vocab {vocab}");
                let emb = &tv.data()[id * dim..(id + 1) * dim];
                for (r, e) in row.iter_mut().zip(emb) {
                    *r += inv * e;
                }
            }
        }
        self.push(out, Op::BagEmbed { table, bags })
    }

    /// Row-wise dot product of two `[n, d]` tensors → `[n]`.
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let av = self.val(a);
        let bv = self.val(b);
        assert_eq!(av.shape(), bv.shape(), "rows_dot: {:?} vs {:?}", av.shape(), bv.shape());
        assert_eq!(av.rank(), 2, "rows_dot: rank-2 required");
        let n = av.rows();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = av.row(i).iter().zip(bv.row(i)).map(|(x, y)| x * y).sum();
        }
        self.push(Tensor::from_vec(vec![n], out), Op::RowsDot(a, b))
    }

    /// The paper's Eq. 6 per-example in-batch negative loss.
    ///
    /// `scores` is the `[n, n]` matrix with `S(mᵢ, eⱼ)` at `(i, j)` and
    /// gold pairs on the diagonal. Produces `[n]` losses
    /// `lᵢ = −Sᵢᵢ + log Σ_{j∈Dᵢ} exp(Sᵢⱼ)` where `Dᵢ` excludes the gold
    /// column when `exclude_gold` (the form printed in the paper) and
    /// includes it otherwise (the standard softmax-CE variant, kept for
    /// the loss ablation).
    ///
    /// # Panics
    /// Panics if `scores` is not square, or if `exclude_gold` with
    /// `n < 2` (the denominator would be empty).
    pub fn in_batch_neg_loss(&mut self, scores: Var, exclude_gold: bool) -> Var {
        let sv = self.val(scores);
        assert_eq!(sv.rank(), 2, "in_batch_neg_loss: rank-2 required");
        let n = sv.rows();
        assert_eq!(n, sv.cols(), "in_batch_neg_loss: square matrix required, got {:?}", sv.shape());
        if exclude_gold {
            assert!(n >= 2, "in_batch_neg_loss: exclude_gold requires batch size >= 2");
        }
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = sv.row(i);
            let lse = if exclude_gold {
                let rest: Vec<f64> =
                    row.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, &s)| s).collect();
                log_sum_exp(&rest)
            } else {
                log_sum_exp(row)
            };
            *o = -row[i] + lse;
        }
        self.push(Tensor::from_vec(vec![n], out), Op::InBatchNegLoss { scores, exclude_gold })
    }

    /// Per-row softmax cross-entropy over `[n, k]` logits → `[n]` losses.
    ///
    /// # Panics
    /// Panics if `targets.len() != n` or any target is out of range.
    pub fn softmax_ce_rows(&mut self, logits: Var, targets: Vec<usize>) -> Var {
        let lv = self.val(logits);
        assert_eq!(lv.rank(), 2, "softmax_ce_rows: rank-2 required");
        let (n, k) = (lv.rows(), lv.cols());
        assert_eq!(targets.len(), n, "softmax_ce_rows: {} targets for {n} rows", targets.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let t = targets[i];
            assert!(t < k, "softmax_ce_rows: target {t} out of range {k}");
            let row = lv.row(i);
            *o = -row[t] + log_sum_exp(row);
        }
        self.push(Tensor::from_vec(vec![n], out), Op::SoftmaxCrossEntropyRows { logits, targets })
    }

    /// Elementwise binary cross-entropy with logits (stable form).
    ///
    /// `targets` are probabilities in `[0, 1]`, flat-aligned with the
    /// logits tensor. Produces a same-shaped tensor of losses.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Vec<f64>) -> Var {
        let lv = self.val(logits);
        assert_eq!(
            lv.numel(),
            targets.len(),
            "bce_with_logits: {} logits vs {} targets",
            lv.numel(),
            targets.len()
        );
        let data: Vec<f64> = lv
            .data()
            .iter()
            .zip(&targets)
            .map(|(&z, &y)| z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln())
            .collect();
        let value = Tensor::from_vec(lv.shape().to_vec(), data);
        self.push(value, Op::BceWithLogits { logits, targets })
    }

    /// Weighted sum `Σᵢ wᵢ xᵢ` of a rank-1 tensor → scalar.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn weighted_sum(&mut self, xs: Var, weights: Vec<f64>) -> Var {
        let xv = self.val(xs);
        assert_eq!(xv.rank(), 1, "weighted_sum: rank-1 required, got {:?}", xv.shape());
        assert_eq!(
            xv.numel(),
            weights.len(),
            "weighted_sum: {} elements vs {} weights",
            xv.numel(),
            weights.len()
        );
        let total: f64 = xv.data().iter().zip(&weights).map(|(x, w)| x * w).sum();
        self.push(Tensor::scalar(total), Op::WeightedSum { xs, weights })
    }

    /// Extract element `index` of a rank-1 tensor as a scalar.
    pub fn gather(&mut self, xs: Var, index: usize) -> Var {
        let xv = self.val(xs);
        assert_eq!(xv.rank(), 1, "gather: rank-1 required");
        assert!(index < xv.numel(), "gather: index {index} out of {}", xv.numel());
        let value = Tensor::scalar(xv.data()[index]);
        self.push(value, Op::Gather { xs, index })
    }

    /// Reshape a node to a new shape with identical element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Vec<usize>>) -> Var {
        let value = self.val(x).clone().reshape(shape);
        self.push(value, Op::Reshape { x })
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse sweep from `loss`, which must be a scalar node.
    ///
    /// # Panics
    /// Panics if `loss` is not scalar (one element).
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.val(loss).numel(),
            1,
            "backward: loss must be scalar, got shape {:?}",
            self.val(loss).shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_vec(self.val(loss).shape().to_vec(), vec![1.0]));

        for idx in (0..=loss.0).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate_parents(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Grads { grads }
    }

    /// Add `delta` into the gradient slot of `v`.
    fn accum(&self, grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
        match &mut grads[v.0] {
            Some(g) => {
                g.axpy(1.0, &delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn accumulate_parents(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        // Clone the op descriptor cheaply (only BagEmbed/targets carry
        // data; those are moderate-sized and only cloned on the backward
        // path of their own node).
        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accum(grads, *a, g.clone());
                self.accum(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accum(grads, *a, g.clone());
                self.accum(grads, *b, g.scale(-1.0));
            }
            Op::MulElem(a, b) => {
                let ga = g.mul(self.val(*b));
                let gb = g.mul(self.val(*a));
                self.accum(grads, *a, ga);
                self.accum(grads, *b, gb);
            }
            Op::Scale(a, k) => {
                self.accum(grads, *a, g.scale(*k));
            }
            Op::AddScalar(a, _) => {
                self.accum(grads, *a, g.clone());
            }
            Op::Matmul(a, b) => {
                // y = a @ b  =>  ga = g @ bᵀ, gb = aᵀ @ g
                let ga = g.matmul_t_with(self.val(*b), self.threads);
                let gb = self.val(*a).transpose().matmul_with(g, self.threads);
                self.accum(grads, *a, ga);
                self.accum(grads, *b, gb);
            }
            Op::MatmulT(a, b) => {
                // y = a @ bᵀ  =>  ga = g @ b, gb = gᵀ @ a
                let ga = g.matmul_with(self.val(*b), self.threads);
                let gb = g.transpose().matmul_with(self.val(*a), self.threads);
                self.accum(grads, *a, ga);
                self.accum(grads, *b, gb);
            }
            Op::Linear { x, w, b } => {
                let gx = g.matmul_t_with(self.val(*w), self.threads);
                let gw = self.val(*x).transpose().matmul_with(g, self.threads);
                // gb = column sums of g.
                let o = self.val(*b).numel();
                let mut gb = vec![0.0; o];
                for i in 0..g.rows() {
                    for (s, v) in gb.iter_mut().zip(g.row(i)) {
                        *s += v;
                    }
                }
                self.accum(grads, *x, gx);
                self.accum(grads, *w, gw);
                self.accum(grads, *b, Tensor::from_vec(vec![o], gb));
            }
            Op::Tanh(a) => {
                // dy/dx = 1 - tanh(x)^2 = 1 - y^2
                let y = &self.nodes[idx].value;
                let ga = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                self.accum(grads, *a, ga);
            }
            Op::Relu(a) => {
                let x = self.val(*a);
                let ga = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                self.accum(grads, *a, ga);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[idx].value;
                let ga = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                self.accum(grads, *a, ga);
            }
            Op::MeanAll(a) => {
                let n = self.val(*a).numel() as f64;
                let ga = Tensor::full(self.val(*a).shape().to_vec(), g.item() / n);
                self.accum(grads, *a, ga);
            }
            Op::SumAll(a) => {
                let ga = Tensor::full(self.val(*a).shape().to_vec(), g.item());
                self.accum(grads, *a, ga);
            }
            Op::RowL2Normalize { x, eps } => {
                let xv = self.val(*x);
                let yv = &self.nodes[idx].value;
                let mut gx = Tensor::zeros(xv.shape().to_vec());
                for i in 0..xv.rows() {
                    let xr = xv.row(i);
                    let yr = yv.row(i);
                    let gr = g.row(i);
                    let norm = xr.iter().map(|v| v * v).sum::<f64>().sqrt();
                    let out = gx.row_mut(i);
                    if norm > *eps {
                        let gy: f64 = gr.iter().zip(yr).map(|(a, b)| a * b).sum();
                        for ((o, &gi), &yi) in out.iter_mut().zip(gr).zip(yr) {
                            *o = (gi - gy * yi) / norm;
                        }
                    } else {
                        for (o, &gi) in out.iter_mut().zip(gr) {
                            *o = gi / eps;
                        }
                    }
                }
                self.accum(grads, *x, gx);
            }
            Op::BagEmbed { table, bags } => {
                let tv = self.val(*table);
                let dim = tv.shape()[1];
                let mut gt = Tensor::zeros(tv.shape().to_vec());
                for (i, bag) in bags.iter().enumerate() {
                    if bag.is_empty() {
                        continue;
                    }
                    let inv = 1.0 / bag.len() as f64;
                    let grow = g.row(i);
                    for &id in bag {
                        let dst = &mut gt.data_mut()[id as usize * dim..(id as usize + 1) * dim];
                        for (d, &gv) in dst.iter_mut().zip(grow) {
                            *d += inv * gv;
                        }
                    }
                }
                self.accum(grads, *table, gt);
            }
            Op::RowsDot(a, b) => {
                let av = self.val(*a);
                let bv = self.val(*b);
                let mut ga = Tensor::zeros(av.shape().to_vec());
                let mut gb = Tensor::zeros(bv.shape().to_vec());
                for i in 0..av.rows() {
                    let gi = g.data()[i];
                    for (o, &bvv) in ga.row_mut(i).iter_mut().zip(bv.row(i)) {
                        *o = gi * bvv;
                    }
                    for (o, &avv) in gb.row_mut(i).iter_mut().zip(av.row(i)) {
                        *o = gi * avv;
                    }
                }
                self.accum(grads, *a, ga);
                self.accum(grads, *b, gb);
            }
            Op::InBatchNegLoss { scores, exclude_gold } => {
                let sv = self.val(*scores);
                let n = sv.rows();
                let mut gs = Tensor::zeros(vec![n, n]);
                for i in 0..n {
                    let gi = g.data()[i];
                    if gi == 0.0 {
                        continue;
                    }
                    let row = sv.row(i);
                    // Softmax over the denominator's support.
                    let lse = if *exclude_gold {
                        let rest: Vec<f64> = row
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, &s)| s)
                            .collect();
                        log_sum_exp(&rest)
                    } else {
                        log_sum_exp(row)
                    };
                    for j in 0..n {
                        let in_denom = !*exclude_gold || j != i;
                        let p = if in_denom { (row[j] - lse).exp() } else { 0.0 };
                        let mut d = p;
                        if j == i {
                            d -= 1.0;
                        }
                        *gs.at_mut(i, j) += gi * d;
                    }
                }
                self.accum(grads, *scores, gs);
            }
            Op::SoftmaxCrossEntropyRows { logits, targets } => {
                let lv = self.val(*logits);
                let (n, k) = (lv.rows(), lv.cols());
                let mut gl = Tensor::zeros(vec![n, k]);
                for i in 0..n {
                    let gi = g.data()[i];
                    if gi == 0.0 {
                        continue;
                    }
                    let row = lv.row(i);
                    let lse = log_sum_exp(row);
                    for j in 0..k {
                        let mut d = (row[j] - lse).exp();
                        if j == targets[i] {
                            d -= 1.0;
                        }
                        *gl.at_mut(i, j) += gi * d;
                    }
                }
                self.accum(grads, *logits, gl);
            }
            Op::BceWithLogits { logits, targets } => {
                let lv = self.val(*logits);
                let data: Vec<f64> = lv
                    .data()
                    .iter()
                    .zip(targets)
                    .zip(g.data())
                    .map(|((&z, &y), &gi)| gi * (1.0 / (1.0 + (-z).exp()) - y))
                    .collect();
                self.accum(grads, *logits, Tensor::from_vec(lv.shape().to_vec(), data));
            }
            Op::WeightedSum { xs, weights } => {
                let gi = g.item();
                let gx: Vec<f64> = weights.iter().map(|&w| gi * w).collect();
                let n = gx.len();
                self.accum(grads, *xs, Tensor::from_vec(vec![n], gx));
            }
            Op::Gather { xs, index } => {
                let n = self.val(*xs).numel();
                let mut gx = vec![0.0; n];
                gx[*index] = g.item();
                self.accum(grads, *xs, Tensor::from_vec(vec![n], gx));
            }
            Op::Reshape { x } => {
                let shape = self.val(*x).shape().to_vec();
                self.accum(grads, *x, g.clone().reshape(shape));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::util::approx_eq;
    use mb_common::Rng;

    /// Numerically differentiate `f` at `x` with central differences.
    fn numeric_grad(f: &dyn Fn(&Tensor) -> f64, x: &Tensor) -> Tensor {
        let eps = 1e-5;
        let mut g = Tensor::zeros(x.shape().to_vec());
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(approx_eq(*x, *y, tol), "grad mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn add_sub_mul_grads() {
        let mut rng = Rng::seed_from_u64(1);
        let a0 = Tensor::randn(vec![3], 0.0, 1.0, &mut rng);
        let b0 = Tensor::randn(vec![3], 0.0, 1.0, &mut rng);

        let f = |a: &Tensor| {
            let mut t = Tape::new();
            let a = t.leaf(a.clone());
            let b = t.leaf(b0.clone());
            let s = t.add(a, b);
            let d = t.sub(s, b);
            let m = t.mul_elem(d, s);
            let l = t.sum_all(m);
            t.value(l).item()
        };

        let mut t = Tape::new();
        let a = t.leaf(a0.clone());
        let b = t.leaf(b0.clone());
        let s = t.add(a, b);
        let d = t.sub(s, b);
        let m = t.mul_elem(d, s);
        let l = t.sum_all(m);
        let g = t.backward(l);
        assert_close(g.get(a).unwrap(), &numeric_grad(&f, &a0), 1e-6);
    }

    #[test]
    fn matmul_grads_both_sides() {
        let mut rng = Rng::seed_from_u64(2);
        let a0 = Tensor::randn(vec![2, 3], 0.0, 1.0, &mut rng);
        let b0 = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);

        let run = |a: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let y = t.matmul(av, bv);
            let l = t.sum_all(y);
            (t.value(l).item(), t.backward(l), av, bv)
        };
        let (_, g, av, bv) = run(&a0, &b0);
        let fa = |a: &Tensor| run(a, &b0).0;
        let fb = |b: &Tensor| run(&a0, b).0;
        assert_close(g.get(av).unwrap(), &numeric_grad(&fa, &a0), 1e-6);
        assert_close(g.get(bv).unwrap(), &numeric_grad(&fb, &b0), 1e-6);
    }

    #[test]
    fn matmul_t_grads() {
        let mut rng = Rng::seed_from_u64(3);
        let a0 = Tensor::randn(vec![3, 2], 0.0, 1.0, &mut rng);
        let b0 = Tensor::randn(vec![4, 2], 0.0, 1.0, &mut rng);
        let run = |a: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let y = t.matmul_t(av, bv);
            // Sum of squares gives asymmetric upstream grads.
            let sq = t.mul_elem(y, y);
            let l = t.sum_all(sq);
            (t.value(l).item(), t.backward(l), av, bv)
        };
        let (_, g, av, bv) = run(&a0, &b0);
        let fa = |a: &Tensor| run(a, &b0).0;
        let fb = |b: &Tensor| run(&a0, b).0;
        assert_close(g.get(av).unwrap(), &numeric_grad(&fa, &a0), 1e-5);
        assert_close(g.get(bv).unwrap(), &numeric_grad(&fb, &b0), 1e-5);
    }

    #[test]
    fn linear_grads() {
        let mut rng = Rng::seed_from_u64(4);
        let x0 = Tensor::randn(vec![3, 2], 0.0, 1.0, &mut rng);
        let w0 = Tensor::randn(vec![2, 4], 0.0, 1.0, &mut rng);
        let b0 = Tensor::randn(vec![4], 0.0, 1.0, &mut rng);
        let run = |x: &Tensor, w: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let wv = t.leaf(w.clone());
            let bv = t.leaf(b.clone());
            let y = t.linear(xv, wv, bv);
            let h = t.tanh(y);
            let l = t.mean_all(h);
            (t.value(l).item(), t.backward(l), xv, wv, bv)
        };
        let (_, g, xv, wv, bv) = run(&x0, &w0, &b0);
        assert_close(g.get(xv).unwrap(), &numeric_grad(&|x| run(x, &w0, &b0).0, &x0), 1e-6);
        assert_close(g.get(wv).unwrap(), &numeric_grad(&|w| run(&x0, w, &b0).0, &w0), 1e-6);
        assert_close(g.get(bv).unwrap(), &numeric_grad(&|b| run(&x0, &w0, b).0, &b0), 1e-6);
    }

    #[test]
    fn activation_grads() {
        let mut rng = Rng::seed_from_u64(5);
        let x0 = Tensor::randn(vec![6], 0.0, 1.5, &mut rng);
        for act in ["tanh", "relu", "sigmoid"] {
            let run = |x: &Tensor| {
                let mut t = Tape::new();
                let xv = t.leaf(x.clone());
                let y = match act {
                    "tanh" => t.tanh(xv),
                    "relu" => t.relu(xv),
                    _ => t.sigmoid(xv),
                };
                let l = t.sum_all(y);
                (t.value(l).item(), t.backward(l), xv)
            };
            let (_, g, xv) = run(&x0);
            assert_close(g.get(xv).unwrap(), &numeric_grad(&|x| run(x).0, &x0), 1e-5);
        }
    }

    #[test]
    fn row_l2_normalize_grads() {
        let mut rng = Rng::seed_from_u64(6);
        let x0 = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);
        let run = |x: &Tensor| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let y = t.row_l2_normalize(xv, 1e-8);
            let sq = t.mul_elem(y, y);
            // Asymmetric upstream grads via a constant-weight leaf.
            let weights: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) * 0.1).collect();
            let c = t.leaf(Tensor::from_vec(vec![3, 4], weights));
            let m = t.mul_elem(sq, c);
            let l = t.sum_all(m);
            (t.value(l).item(), t.backward(l), xv)
        };
        let (_, g, xv) = run(&x0);
        assert_close(g.get(xv).unwrap(), &numeric_grad(&|x| run(x).0, &x0), 1e-5);
    }

    #[test]
    fn row_l2_normalize_output_is_unit() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::matrix(&[&[3.0, 4.0], &[0.0, 0.0]]));
        let y = t.row_l2_normalize(x, 1e-8);
        assert!(approx_eq(t.value(y).row(0).iter().map(|v| v * v).sum::<f64>(), 1.0, 1e-12));
        // Zero rows stay (near) zero rather than NaN.
        assert!(t.value(y).row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bag_embed_forward_and_grads() {
        let table0 = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let bags = vec![vec![0u32, 2], vec![1], vec![]];
        let run = |tab: &Tensor| {
            let mut t = Tape::new();
            let tv = t.leaf(tab.clone());
            let y = t.bag_embed(tv, bags.clone());
            let sq = t.mul_elem(y, y);
            let l = t.sum_all(sq);
            (t.value(l).item(), t.backward(l), tv, t.value(y).clone())
        };
        let (_, g, tv, y) = run(&table0);
        assert_eq!(y.row(0), &[3.0, 4.0]); // mean of rows 0 and 2
        assert_eq!(y.row(1), &[3.0, 4.0]); // row 1
        assert_eq!(y.row(2), &[0.0, 0.0]); // empty bag
        assert_close(g.get(tv).unwrap(), &numeric_grad(&|x| run(x).0, &table0), 1e-5);
    }

    #[test]
    fn rows_dot_grads() {
        let mut rng = Rng::seed_from_u64(7);
        let a0 = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);
        let b0 = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);
        let run = |a: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let av = t.leaf(a.clone());
            let bv = t.leaf(b.clone());
            let d = t.rows_dot(av, bv);
            let l = t.weighted_sum(d, vec![1.0, -2.0, 0.5]);
            (t.value(l).item(), t.backward(l), av, bv)
        };
        let (_, g, av, bv) = run(&a0, &b0);
        assert_close(g.get(av).unwrap(), &numeric_grad(&|a| run(a, &b0).0, &a0), 1e-6);
        assert_close(g.get(bv).unwrap(), &numeric_grad(&|b| run(&a0, b).0, &b0), 1e-6);
    }

    #[test]
    fn in_batch_neg_loss_values_and_grads() {
        let mut rng = Rng::seed_from_u64(8);
        let s0 = Tensor::randn(vec![4, 4], 0.0, 1.0, &mut rng);
        for exclude in [true, false] {
            let run = |s: &Tensor| {
                let mut t = Tape::new();
                let sv = t.leaf(s.clone());
                let l = t.in_batch_neg_loss(sv, exclude);
                let tot = t.weighted_sum(l, vec![0.4, 0.3, 0.2, 0.1]);
                (t.value(tot).item(), t.backward(tot), sv, t.value(l).clone())
            };
            let (_, g, sv, losses) = run(&s0);
            // Hand-check loss of row 0.
            let row = s0.row(0);
            let denom: Vec<f64> = if exclude { row[1..].to_vec() } else { row.to_vec() };
            let expect = -row[0] + log_sum_exp(&denom);
            assert!(approx_eq(losses.data()[0], expect, 1e-12));
            assert_close(g.get(sv).unwrap(), &numeric_grad(&|s| run(s).0, &s0), 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "batch size >= 2")]
    fn in_batch_neg_loss_rejects_singleton_excluding_gold() {
        let mut t = Tape::new();
        let s = t.leaf(Tensor::matrix(&[&[1.0]]));
        t.in_batch_neg_loss(s, true);
    }

    #[test]
    fn softmax_ce_rows_grads() {
        let mut rng = Rng::seed_from_u64(9);
        let l0 = Tensor::randn(vec![3, 5], 0.0, 1.0, &mut rng);
        let targets = vec![2usize, 0, 4];
        let run = |x: &Tensor| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let l = t.softmax_ce_rows(xv, targets.clone());
            let tot = t.mean_all(l);
            (t.value(tot).item(), t.backward(tot), xv)
        };
        let (val, g, xv) = run(&l0);
        assert!(val > 0.0);
        assert_close(g.get(xv).unwrap(), &numeric_grad(&|x| run(x).0, &l0), 1e-6);
    }

    #[test]
    fn bce_with_logits_grads_and_stability() {
        let l0 = Tensor::vector(&[-50.0, -1.0, 0.0, 1.0, 50.0]);
        let targets = vec![0.0, 1.0, 0.5, 0.0, 1.0];
        let run = |x: &Tensor| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let l = t.bce_with_logits(xv, targets.clone());
            let tot = t.mean_all(l);
            (t.value(tot).item(), t.backward(tot), xv, t.value(l).clone())
        };
        let (val, g, xv, per) = run(&l0);
        assert!(val.is_finite());
        assert!(per.data().iter().all(|x| x.is_finite() && *x >= 0.0));
        assert_close(g.get(xv).unwrap(), &numeric_grad(&|x| run(x).0, &l0), 1e-5);
    }

    #[test]
    fn weighted_sum_and_gather_grads() {
        let x0 = Tensor::vector(&[1.0, 2.0, 3.0]);
        let mut t = Tape::new();
        let x = t.leaf(x0.clone());
        let ws = t.weighted_sum(x, vec![0.5, 0.0, 2.0]);
        assert_eq!(t.value(ws).item(), 0.5 + 6.0);
        let g = t.backward(ws);
        assert_eq!(g.get(x).unwrap().data(), &[0.5, 0.0, 2.0]);

        let mut t2 = Tape::new();
        let x2 = t2.leaf(x0);
        let picked = t2.gather(x2, 1);
        assert_eq!(t2.value(picked).item(), 2.0);
        let g2 = t2.backward(picked);
        assert_eq!(g2.get(x2).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn unconnected_leaf_has_no_grad() {
        let mut t = Tape::new();
        let a = t.leaf(Tensor::vector(&[1.0]));
        let b = t.leaf(Tensor::vector(&[2.0]));
        let l = t.sum_all(a);
        let g = t.backward(l);
        assert!(g.get(b).is_none());
        assert_eq!(g.get_or_zeros(b, &[1]).data(), &[0.0]);
    }

    #[test]
    fn grad_accumulates_over_shared_subexpressions() {
        // l = sum(x * x) => dl/dx = 2x via two paths through MulElem.
        let x0 = Tensor::vector(&[1.5, -2.0]);
        let mut t = Tape::new();
        let x = t.leaf(x0.clone());
        let m = t.mul_elem(x, x);
        let l = t.sum_all(m);
        let g = t.backward(l);
        assert_eq!(g.get(x).unwrap().data(), &[3.0, -4.0]);
    }

    #[test]
    fn reshape_grads_flow_through() {
        let x0 = Tensor::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut t = Tape::new();
        let x = t.leaf(x0);
        let flat = t.reshape(x, vec![4]);
        let l = t.weighted_sum(flat, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.value(l).item(), 30.0);
        let g = t.backward(l);
        let gx = g.get(x).unwrap();
        assert_eq!(gx.shape(), &[2, 2]);
        assert_eq!(gx.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::vector(&[1.0, 2.0]));
        t.backward(x);
    }
}
