//! Quantized embedding tables for the tape-free serving path.
//!
//! Frozen embedding tables (see [`crate::frozen`]) can be stored in
//! IEEE-754 binary16 ([`QuantF16`], 4× smaller than the `f64` master
//! copy) or per-row symmetric int8 ([`QuantI8`], ~8× smaller). Unlike
//! the frozen `f64` forward — which is pinned *bit-identical* to the
//! tape forward — quantized scoring carries a **bounded-error
//! contract** instead of bit equality:
//!
//! - **f16 round-trip**: `f16_to_f64(f16_from_f64(x))` is within half
//!   an f16 ulp of `x` (relative error ≤ 2⁻¹¹ over the normal range,
//!   absolute error ≤ 2⁻²⁵ in the subnormal range); conversion rounds
//!   to nearest, ties to even.
//! - **int8 round-trip**: each row is quantized against its own scale
//!   `max_abs(row)/127`, so every dequantized element is within
//!   `scale/2` of the original.
//! - **Scoring**: dot products accumulate over dequantized values (f16)
//!   or exactly in integers before one final scale multiplication
//!   (int8), so score error is bounded by the per-element round-trip
//!   bounds — the property suites in `tests/proptest_quant.rs` pin both
//!   the bounds and top-k agreement against exact `f64` scoring.
//!
//! Quantization itself happens **once** at model-freeze time
//! (`ServeModel::from_checkpoint`); no serving-path code re-quantizes a
//! table or allocates a dequantized copy.

use crate::kernels;
use crate::tensor::Tensor;
use mb_par::Threads;

/// How a frozen embedding table is stored and scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Keep the `f64` master copy: bit-identical to the tape forward.
    #[default]
    Exact,
    /// IEEE-754 binary16 storage (4× smaller), bounded-error scoring.
    F16,
    /// Per-row symmetric int8 storage (~8× smaller), bounded-error
    /// scoring with exact integer accumulation.
    Int8,
}

impl QuantMode {
    /// Short lowercase label (`exact` / `f16` / `int8`) for reports.
    pub fn label(self) -> &'static str {
        match self {
            QuantMode::Exact => "exact",
            QuantMode::F16 => "f16",
            QuantMode::Int8 => "int8",
        }
    }
}

/// Round `sig` right by `shift` bits, to nearest, ties to even.
/// `shift` must be in `1..=63`.
fn round_even(sig: u64, shift: u32) -> u64 {
    let kept = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rem > half || (rem == half && kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Exact power of two `2^n` for `n` in the f64 normal exponent range.
fn exp2i(n: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&n));
    f64::from_bits(((n + 1023) as u64) << 52)
}

/// Convert an `f64` to IEEE-754 binary16 bits, rounding to nearest
/// with ties to even. Values beyond ±65504 overflow to ±infinity after
/// rounding; NaN maps to a quiet NaN.
pub fn f16_from_f64(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let mant = bits & ((1u64 << 52) - 1);
    if exp == 0x7ff {
        // Infinity stays infinity; NaN keeps a quiet payload bit.
        return sign | 0x7c00 | if mant != 0 { 0x200 } else { 0 };
    }
    if exp == 0 {
        // f64 subnormals are far below half the smallest f16 subnormal.
        return sign;
    }
    let unbiased = exp - 1023;
    if unbiased >= 16 {
        return sign | 0x7c00; // beyond the f16 exponent range pre-rounding
    }
    // 53-bit significand; the value is `sig * 2^(unbiased - 52)`.
    let sig = (1u64 << 52) | mant;
    if unbiased >= -14 {
        // Normal f16: keep an 11-bit significand (implicit bit included).
        let m = round_even(sig, 42);
        let (m, e) = if m >= 1 << 11 { (m >> 1, unbiased + 16) } else { (m, unbiased + 15) };
        if e >= 31 {
            return sign | 0x7c00; // rounding carried past the top exponent
        }
        sign | ((e as u16) << 10) | ((m & 0x3ff) as u16)
    } else {
        // Subnormal f16: round to an integer multiple of 2^-24. A
        // mantissa that rounds up to 1024 lands exactly on the smallest
        // normal encoding (exponent 1, mantissa 0).
        let shift = 28 - unbiased; // ≥ 43
        if shift >= 64 {
            return sign; // underflows to zero even after rounding
        }
        sign | round_even(sig, shift as u32) as u16
    }
}

/// Convert IEEE-754 binary16 bits back to `f64` (exact: every f16
/// value is representable in f64).
pub fn f16_to_f64(h: u16) -> f64 {
    let sign = if h & 0x8000 != 0 { -1.0 } else { 1.0 };
    let e = (h >> 10) & 0x1f;
    let m = f64::from(h & 0x3ff);
    match e {
        0 => sign * m * exp2i(-24),
        0x1f => {
            if m == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => sign * (1024.0 + m) * exp2i(i32::from(e) - 25),
    }
}

/// A rank-2 table stored as IEEE-754 binary16 (2 bytes per element).
#[derive(Debug, Clone)]
pub struct QuantF16 {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl QuantF16 {
    /// Quantize a rank-2 tensor. Happens once, at model-freeze time.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 2, "QuantF16: table must be rank-2, got {:?}", t.shape());
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let data = t.data().iter().map(|&v| f16_from_f64(v)).collect();
        QuantF16 { rows, cols, data }
    }

    /// Reassemble a table from its raw binary16 bit patterns — the
    /// shard-load path of `mb-store`, which persists `bits` verbatim so
    /// reloading never re-quantizes.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when `bits.len() != rows * cols`.
    pub fn from_raw(rows: usize, cols: usize, bits: Vec<u16>) -> mb_common::Result<Self> {
        if bits.len() != rows * cols {
            return Err(mb_common::Error::shape(
                "QuantF16::from_raw",
                format!("{} elements ({rows}x{cols})", rows * cols),
                format!("{} elements", bits.len()),
            ));
        }
        Ok(QuantF16 { rows, cols, data: bits })
    }

    /// The raw binary16 bit patterns, row-major — what `from_raw`
    /// round-trips and what the shard format persists.
    pub fn bits(&self) -> &[u16] {
        &self.data
    }

    /// Number of table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Table storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// Dequantized element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "QuantF16: ({i},{j}) out of bounds");
        f16_to_f64(self.data[i * self.cols + j])
    }

    /// Dequantize the whole table (tests and error measurement only —
    /// the serving path never materialises this).
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&h| f16_to_f64(h)).collect();
        Tensor::from_vec(vec![self.rows, self.cols], data)
    }

    /// Mean-pool dequantized table rows per bag, in bag order — the
    /// quantized counterpart of the tape's `bag_embed`.
    pub fn bag_embed(&self, bags: &[Vec<u32>]) -> Tensor {
        let mut out = Tensor::zeros(vec![bags.len(), self.cols]);
        for (i, bag) in bags.iter().enumerate() {
            if bag.is_empty() {
                continue;
            }
            let inv = 1.0 / bag.len() as f64;
            let row = out.row_mut(i);
            for &id in bag {
                let id = id as usize;
                assert!(id < self.rows, "bag_embed: token id {id} out of vocab {}", self.rows);
                let emb = &self.data[id * self.cols..(id + 1) * self.cols];
                for (r, &e) in row.iter_mut().zip(emb) {
                    *r += inv * f16_to_f64(e);
                }
            }
        }
        out
    }

    /// Dot product of `query` against every row, dequantizing on the
    /// fly (no table-sized allocation). Bit-identical at any thread
    /// count.
    pub fn score_all(&self, query: &[f64], threads: Threads) -> Vec<f64> {
        assert_eq!(query.len(), self.cols, "QuantF16: query dim mismatch");
        kernels::score_all_f16(&self.data, self.rows, self.cols, query, threads)
    }
}

/// A rank-2 table stored as per-row symmetric int8 (1 byte per element
/// plus one `f64` scale per row).
#[derive(Debug, Clone)]
pub struct QuantI8 {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f64>,
}

/// Quantize a vector symmetrically to int8: returns the codes and the
/// scale (`max_abs/127`; a zero vector gets scale 0 and all-zero
/// codes). Every dequantized element is within `scale/2` of the input.
pub fn quantize_i8(v: &[f64]) -> (Vec<i8>, f64) {
    let max_abs = v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        return (vec![0; v.len()], 0.0);
    }
    let scale = max_abs / 127.0;
    let codes = v.iter().map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
    (codes, scale)
}

impl QuantI8 {
    /// Quantize a rank-2 tensor row by row. Happens once, at
    /// model-freeze time.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.rank(), 2, "QuantI8: table must be rank-2, got {:?}", t.shape());
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for i in 0..rows {
            let (codes, scale) = quantize_i8(t.row(i));
            data.extend_from_slice(&codes);
            scales.push(scale);
        }
        QuantI8 { rows, cols, data, scales }
    }

    /// Reassemble a table from raw codes and per-row scales — the
    /// shard-load path of `mb-store`, which persists both verbatim so
    /// reloading never re-quantizes.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when `codes.len() != rows * cols`
    /// or `scales.len() != rows`.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        codes: Vec<i8>,
        scales: Vec<f64>,
    ) -> mb_common::Result<Self> {
        if codes.len() != rows * cols {
            return Err(mb_common::Error::shape(
                "QuantI8::from_raw",
                format!("{} codes ({rows}x{cols})", rows * cols),
                format!("{} codes", codes.len()),
            ));
        }
        if scales.len() != rows {
            return Err(mb_common::Error::shape(
                "QuantI8::from_raw",
                format!("{rows} scales (one per row)"),
                format!("{} scales", scales.len()),
            ));
        }
        Ok(QuantI8 { rows, cols, data: codes, scales })
    }

    /// The raw int8 codes, row-major — what `from_raw` round-trips and
    /// what the shard format persists.
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Number of table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of table columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Table storage footprint in bytes (codes plus per-row scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f64>()
    }

    /// Per-row quantization scales (`max_abs/127`).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Dequantized element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "QuantI8: ({i},{j}) out of bounds");
        f64::from(self.data[i * self.cols + j]) * self.scales[i]
    }

    /// Dequantize the whole table (tests and error measurement only —
    /// the serving path never materialises this).
    pub fn dequantize(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            let scale = self.scales[i];
            for &q in &self.data[i * self.cols..(i + 1) * self.cols] {
                data.push(f64::from(q) * scale);
            }
        }
        Tensor::from_vec(vec![self.rows, self.cols], data)
    }

    /// Mean-pool dequantized table rows per bag, in bag order — the
    /// quantized counterpart of the tape's `bag_embed`.
    pub fn bag_embed(&self, bags: &[Vec<u32>]) -> Tensor {
        let mut out = Tensor::zeros(vec![bags.len(), self.cols]);
        for (i, bag) in bags.iter().enumerate() {
            if bag.is_empty() {
                continue;
            }
            let inv = 1.0 / bag.len() as f64;
            let row = out.row_mut(i);
            for &id in bag {
                let id = id as usize;
                assert!(id < self.rows, "bag_embed: token id {id} out of vocab {}", self.rows);
                let scale = self.scales[id];
                let emb = &self.data[id * self.cols..(id + 1) * self.cols];
                for (r, &q) in row.iter_mut().zip(emb) {
                    *r += inv * (f64::from(q) * scale);
                }
            }
        }
        out
    }

    /// Dot product of `query` against every row without dequantizing
    /// the table: the query is quantized once, products accumulate
    /// exactly in integers, and each row's sum is scaled back in one
    /// final multiplication. Bit-identical at any thread count.
    pub fn score_all(&self, query: &[f64], threads: Threads) -> Vec<f64> {
        assert_eq!(query.len(), self.cols, "QuantI8: query dim mismatch");
        let (q, q_scale) = quantize_i8(query);
        kernels::score_all_i8(&self.data, &self.scales, self.rows, self.cols, &q, q_scale, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_values() {
        // Every value exactly representable in binary16 must survive.
        for x in [0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -65504.0, 0.0999755859375] {
            let rt = f16_to_f64(f16_from_f64(x));
            assert_eq!(rt, x, "{x} -> {rt}");
        }
        assert_eq!(f16_from_f64(-0.0), 0x8000);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 2049/1024 is exactly between 2.0 (mantissa 0, even) and the
        // next representable value; ties go to the even mantissa.
        assert_eq!(f16_from_f64(2049.0 / 1024.0), f16_from_f64(2.0));
        // 2051/1024 is between 2050/1024 (odd) and 2052/1024 (even).
        assert_eq!(f16_from_f64(2051.0 / 1024.0), f16_from_f64(2052.0 / 1024.0));
    }

    #[test]
    fn f16_handles_range_edges() {
        assert_eq!(f16_to_f64(f16_from_f64(1e10)), f64::INFINITY);
        assert_eq!(f16_to_f64(f16_from_f64(-1e10)), f64::NEG_INFINITY);
        assert_eq!(f16_from_f64(65520.0), 0x7c00); // rounds up to inf
        assert_eq!(f16_to_f64(f16_from_f64(65519.9)), 65504.0); // rounds down to max
        assert!(f16_to_f64(f16_from_f64(f64::NAN)).is_nan());
        // Smallest subnormal and below.
        let tiny = exp2i(-24);
        assert_eq!(f16_to_f64(f16_from_f64(tiny)), tiny);
        assert_eq!(f16_to_f64(f16_from_f64(tiny / 4.0)), 0.0);
        assert_eq!(f16_to_f64(f16_from_f64(1e-300)), 0.0);
    }

    #[test]
    fn i8_round_trip_is_within_half_scale() {
        let t = Tensor::from_vec(vec![2, 4], vec![0.1, -0.9, 0.35, 0.02, 1.0, 2.0, -3.0, 0.0]);
        let q = QuantI8::from_tensor(&t);
        for i in 0..2 {
            let scale = q.scales()[i];
            for j in 0..4 {
                let err = (q.get(i, j) - t.at(i, j)).abs();
                assert!(err <= scale / 2.0 + 1e-15, "({i},{j}): err {err} vs scale {scale}");
            }
        }
        // The row maximum hits code ±127 exactly.
        assert_eq!(q.get(1, 2), -3.0);
    }

    #[test]
    fn zero_row_quantizes_to_zero() {
        let t = Tensor::zeros(vec![3, 5]);
        let q = QuantI8::from_tensor(&t);
        assert_eq!(q.scales(), &[0.0, 0.0, 0.0]);
        assert_eq!(q.dequantize().data(), t.data());
        let f = QuantF16::from_tensor(&t);
        assert_eq!(f.dequantize().data(), t.data());
    }

    #[test]
    fn bytes_report_the_expected_shrink() {
        let t = Tensor::zeros(vec![100, 32]);
        let f64_bytes = t.numel() * std::mem::size_of::<f64>();
        assert_eq!(QuantF16::from_tensor(&t).bytes() * 4, f64_bytes);
        let i8_bytes = QuantI8::from_tensor(&t).bytes();
        assert_eq!(i8_bytes, 100 * 32 + 100 * 8);
        assert!(f64_bytes / i8_bytes >= 6);
    }
}
