//! Property tests pinning the quantization error contract (DESIGN.md
//! §12): f16 round-trips stay within half a unit in the last place of
//! an 11-bit significand, int8 round-trips stay within half a
//! quantization step, and the dequantize-free int8 dot product is
//! exactly the integer-accumulated reference — not merely close to it.

use mb_check::gen;
use mb_check::{prop_assert, prop_assert_eq};
use mb_common::Rng;
use mb_par::Threads;
use mb_tensor::quant::{f16_from_f64, f16_to_f64, quantize_i8, QuantF16, QuantI8};
use mb_tensor::{frozen, Tensor};

/// Values spanning the f16 normal range (~6e-5 .. 65504) with random
/// sign, plus exact zeros.
fn f16_range_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.below(16) == 0 {
                return 0.0;
            }
            let mag = rng.below(20) as i32 - 10; // 10^-10 .. 10^9 pre-clamp
            let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
            let v = sign * (0.1 + rng.f64()) * 10f64.powi(mag);
            v.clamp(-60000.0, 60000.0)
        })
        .collect()
}

/// A rank-2 table of values safely inside the f16 normal range.
fn table(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_vec(vec![rows, cols], f16_range_values(rows * cols, seed))
}

mb_check::check! {
    #![config(cases = 64)]

    fn f16_round_trip_error_is_bounded(seed in gen::u64_any()) {
        // Normal-range values round-trip within 2^-11 relative error
        // (round-to-nearest over a 10-bit stored mantissa); the
        // round-trip is idempotent; zero is exact.
        for x in f16_range_values(64, seed) {
            let rt = f16_to_f64(f16_from_f64(x));
            if x == 0.0 {
                prop_assert_eq!(rt, 0.0, "zero must round-trip exactly");
                continue;
            }
            if x.abs() >= 6.2e-5 {
                let rel = (rt - x).abs() / x.abs();
                prop_assert!(rel <= 1.0 / 2048.0, "x={} rt={} rel={}", x, rt, rel);
            } else {
                // Subnormal f16: absolute error within half the
                // smallest subnormal step (2^-24).
                prop_assert!((rt - x).abs() <= 3.0e-8, "x={} rt={}", x, rt);
            }
            let again = f16_to_f64(f16_from_f64(rt));
            prop_assert_eq!(again.to_bits(), rt.to_bits(), "round-trip must be idempotent");
        }
    }

    fn int8_round_trip_stays_within_half_a_step(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let cols = 1 + rng.below(48);
        let row = f16_range_values(cols, seed ^ 1);
        let (codes, scale) = quantize_i8(&row);
        let max_abs = row.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        if max_abs == 0.0 {
            prop_assert_eq!(scale, 0.0);
            prop_assert!(codes.iter().all(|&q| q == 0));
            return Ok(());
        }
        prop_assert_eq!(scale, max_abs / 127.0, "scale is max_abs/127");
        for (&q, &x) in codes.iter().zip(&row) {
            let err = (f64::from(q) * scale - x).abs();
            // Half a step, with headroom for the two float roundings.
            prop_assert!(err <= scale * 0.5000001, "x={} q={} err={} scale={}", x, q, err, scale);
            prop_assert!((-127..=127).contains(&i32::from(q)));
        }
    }

    fn int8_dot_is_exactly_the_integer_reference(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (rows, cols) = (1 + rng.below(40), 1 + rng.below(32));
        let t = table(rows, cols, seed ^ 2);
        let quant = QuantI8::from_tensor(&t);
        let query = f16_range_values(cols, seed ^ 3);
        let (q_codes, q_scale) = quantize_i8(&query);
        let want: Vec<f64> = (0..rows)
            .map(|i| {
                let scale = quant.scales()[i];
                if scale == 0.0 {
                    return 0.0; // all-zero row quantizes to all-zero codes
                }
                let acc: i64 = (0..cols)
                    .map(|j| {
                        let code = (t.row(i)[j] / scale).round().clamp(-127.0, 127.0);
                        code as i64 * i64::from(q_codes[j])
                    })
                    .sum();
                acc as f64 * (scale * q_scale)
            })
            .collect();
        // Integer accumulation is exact, so every thread count must
        // reproduce the reference bit for bit.
        for threads in [1usize, 2, 3, 4] {
            let got = quant.score_all(&query, Threads::new(threads));
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                prop_assert_eq!(w.to_bits(), g.to_bits(), "row {} threads {}", i, threads);
            }
        }
    }

    fn quantized_bag_embed_matches_the_dequantized_table(seed in gen::u64_any()) {
        // Mean-pooling the quantized table must equal running the exact
        // frozen `bag_embed` over the dequantized table, bit for bit —
        // quantization error enters through the stored values only,
        // never through a different pooling order.
        let mut rng = Rng::seed_from_u64(seed);
        let (rows, cols) = (2 + rng.below(30), 1 + rng.below(24));
        let t = table(rows, cols, seed ^ 4);
        let bags: Vec<Vec<u32>> = (0..1 + rng.below(12))
            .map(|_| (0..rng.below(6)).map(|_| rng.below(rows) as u32).collect())
            .collect();
        let f16 = QuantF16::from_tensor(&t);
        let i8t = QuantI8::from_tensor(&t);
        for (quant_pool, dequant) in
            [(f16.bag_embed(&bags), f16.dequantize()), (i8t.bag_embed(&bags), i8t.dequantize())]
        {
            let want = frozen::bag_embed(&dequant, &bags);
            prop_assert_eq!(quant_pool.shape(), want.shape());
            for (a, b) in quant_pool.data().iter().zip(want.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
