//! Integration-level tests of training dynamics on the tensor
//! substrate: optimizer determinism, clipping, and a small end-to-end
//! regression fit exercising most of the op set together.

use mb_common::Rng;
use mb_tensor::optim::{Adam, Optimizer, Sgd};
use mb_tensor::params::GradVec;
use mb_tensor::{init, Params, Tape, Tensor};

/// Fit y = tanh(x W + b) V to a fixed random teacher network.
fn student_teacher_loss(seed: u64, steps: usize, lr: f64) -> (f64, f64) {
    let mut rng = Rng::seed_from_u64(seed);
    let n = 32;
    let x = Tensor::randn(vec![n, 4], 0.0, 1.0, &mut rng);
    // Teacher.
    let tw = Tensor::randn(vec![4, 6], 0.0, 0.8, &mut rng);
    let tv = Tensor::randn(vec![6, 1], 0.0, 0.8, &mut rng);
    let y = x.matmul(&tw).map(f64::tanh).matmul(&tv);

    let mut params = Params::new();
    params.add("w", init::xavier_uniform(4, 6, &mut rng));
    params.add("b", init::zeros_bias(6));
    params.add("v", init::xavier_uniform(6, 1, &mut rng));

    let loss_of = |p: &Params| -> (f64, GradVec) {
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let xv = tape.leaf(x.clone());
        let h = tape.linear(xv, vars[0], vars[1]);
        let h = tape.tanh(h);
        let zb = tape.leaf(Tensor::zeros(vec![1]));
        let pred = tape.linear(h, vars[2], zb);
        let yv = tape.leaf(y.clone());
        let d = tape.sub(pred, yv);
        let sq = tape.mul_elem(d, d);
        let l = tape.mean_all(sq);
        let value = tape.value(l).item();
        let grads = tape.backward(l);
        (value, p.collect_grads(&vars, &grads))
    };

    let (initial, _) = loss_of(&params);
    let mut opt = Adam::new(lr);
    for _ in 0..steps {
        let (_, g) = loss_of(&params);
        opt.step(&mut params, &g);
    }
    let (fin, _) = loss_of(&params);
    (initial, fin)
}

#[test]
fn student_learns_the_teacher() {
    let (initial, fin) = student_teacher_loss(5, 400, 0.02);
    assert!(fin < initial * 0.05, "loss barely moved: {initial:.4} -> {fin:.4}");
}

#[test]
fn training_is_bitwise_deterministic() {
    let a = student_teacher_loss(9, 50, 0.01);
    let b = student_teacher_loss(9, 50, 0.01);
    assert_eq!(a, b);
}

#[test]
fn sgd_and_adam_agree_at_the_first_plain_step() {
    // With zero momentum state, plain SGD moves by lr*g; Adam's first
    // step moves by ~lr*sign(g). Both must move *downhill*.
    let mut rng = Rng::seed_from_u64(2);
    let target = Tensor::randn(vec![4], 0.0, 1.0, &mut rng);
    let loss = |p: &Params| -> (f64, GradVec) {
        let mut tape = Tape::new();
        let vars = p.inject(&mut tape);
        let t = tape.leaf(target.clone());
        let d = tape.sub(vars[0], t);
        let sq = tape.mul_elem(d, d);
        let l = tape.sum_all(sq);
        let v = tape.value(l).item();
        let g = tape.backward(l);
        (v, p.collect_grads(&vars, &g))
    };
    for mut opt in [Box::new(Sgd::new(0.05)) as Box<dyn Optimizer>, Box::new(Adam::new(0.05))] {
        let mut params = Params::new();
        params.add("x", Tensor::zeros(vec![4]));
        let (before, g) = loss(&params);
        opt.step(&mut params, &g);
        let (after, _) = loss(&params);
        assert!(after < before, "{} did not descend", opt.learning_rate());
    }
}

#[test]
fn global_norm_clipping_preserves_direction() {
    let g = GradVec::from_tensors(vec![Tensor::vector(&[3.0, 0.0]), Tensor::vector(&[0.0, 4.0])]);
    let mut clipped = g.clone();
    let k = clipped.clip_global_norm(2.5);
    assert!((k - 0.5).abs() < 1e-12);
    assert!((clipped.norm() - 2.5).abs() < 1e-12);
    // Direction preserved: components scale uniformly.
    let tensors: Vec<&Tensor> = clipped.iter().collect();
    assert!((tensors[0].data()[0] - 1.5).abs() < 1e-12);
    assert!((tensors[1].data()[1] - 2.0).abs() < 1e-12);
}
