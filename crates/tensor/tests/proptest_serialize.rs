//! Property-based round-trip tests of the checkpoint format.

use mb_check::gen::{self, CharsetChar, StringGen};
use mb_check::prop_assert_eq;
use mb_tensor::{serialize, Params, Tensor};

fn param_name() -> StringGen<CharsetChar> {
    gen::charset_string("abcdefghijklmnopqrstuvwxyz0123456789_.", 1..=13)
}

mb_check::check! {
    #![config(cases = 48)]

    fn arbitrary_params_round_trip_exactly(
        specs in gen::vec_of(
            (
                param_name(),
                gen::usize_in(1..5),
                gen::usize_in(1..5),
                gen::vec_of(gen::f64_normal_or_zero(), 1..25),
            ),
            1..6,
        )
    ) {
        let mut params = Params::new();
        let mut used = std::collections::HashSet::new();
        for (name, r, c, data) in specs {
            if !used.insert(name.clone()) {
                continue; // names must be unique
            }
            let numel = r * c;
            let mut values = data;
            values.resize(numel, 0.0);
            params.add(&name, Tensor::from_vec(vec![r, c], values));
        }
        let text = serialize::to_string(&params).expect("finite params serialize");
        let parsed = serialize::from_string(&text).expect("round trip parse");
        prop_assert_eq!(parsed, params);
    }

    fn parser_never_panics_on_garbage(garbage in gen::any_string(0..=300)) {
        // Must return Err or Ok, never panic.
        let _ = serialize::from_string(&garbage);
    }

    fn parser_never_panics_on_mutated_valid_input(
        flip in gen::usize_in(0..200),
        replacement in gen::char_in('!', '~'),
    ) {
        let mut params = Params::new();
        params.add("w", Tensor::from_vec(vec![2, 2], vec![1.0, -2.5, 3.25, 0.0]));
        let text = serialize::to_string(&params).expect("finite params serialize");
        let mut chars: Vec<char> = text.chars().collect();
        if !chars.is_empty() {
            let idx = flip % chars.len();
            chars[idx] = replacement;
        }
        let mutated: String = chars.into_iter().collect();
        let _ = serialize::from_string(&mutated);
    }
}
