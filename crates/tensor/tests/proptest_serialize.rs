//! Property-based round-trip tests of the checkpoint format.

use mb_tensor::{serialize, Params, Tensor};
use proptest::prelude::*;

fn param_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_params_round_trip_exactly(
        specs in proptest::collection::vec(
            (param_name(), 1usize..5, 1usize..5,
             proptest::collection::vec(proptest::num::f64::NORMAL | proptest::num::f64::ZERO, 1..25)),
            1..6,
        )
    ) {
        let mut params = Params::new();
        let mut used = std::collections::HashSet::new();
        for (name, r, c, data) in specs {
            if !used.insert(name.clone()) {
                continue; // names must be unique
            }
            let numel = r * c;
            let mut values = data;
            values.resize(numel, 0.0);
            params.add(&name, Tensor::from_vec(vec![r, c], values));
        }
        let text = serialize::to_string(&params);
        let parsed = serialize::from_string(&text).expect("round trip parse");
        prop_assert_eq!(parsed, params);
    }

    #[test]
    fn parser_never_panics_on_garbage(garbage in ".{0,300}") {
        // Must return Err or Ok, never panic.
        let _ = serialize::from_string(&garbage);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid_input(
        flip in 0usize..200,
        replacement in proptest::char::range('!', '~'),
    ) {
        let mut params = Params::new();
        params.add("w", Tensor::from_vec(vec![2, 2], vec![1.0, -2.5, 3.25, 0.0]));
        let text = serialize::to_string(&params);
        let mut chars: Vec<char> = text.chars().collect();
        if !chars.is_empty() {
            let idx = flip % chars.len();
            chars[idx] = replacement;
        }
        let mutated: String = chars.into_iter().collect();
        let _ = serialize::from_string(&mutated);
    }
}
