//! Property-based tests of the `mb-params v2` checkpoint format:
//! random checkpoints (params + optimizer state + RNG streams +
//! diagnostic vectors + metadata) round-trip exactly, and any single
//! bit-flip or truncation of the encoded bytes is *detected* — a
//! corrupted checkpoint either loads equal to the original or fails,
//! never silently loads different state.

use mb_check::gen::{self, CharsetChar, StringGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_tensor::checkpoint::Checkpoint;
use mb_tensor::optim::OptimState;
use mb_tensor::{Params, Tensor};

fn key_name() -> StringGen<CharsetChar> {
    gen::charset_string("abcdefghijklmnopqrstuvwxyz0123456789_.-/", 1..=10)
}

fn params_from(specs: Vec<(String, usize, Vec<f64>)>) -> Params {
    let mut params = Params::new();
    let mut used = std::collections::HashSet::new();
    for (name, cols, data) in specs {
        if !used.insert(name.clone()) {
            continue;
        }
        let mut values = data;
        values.resize(cols.max(1), 0.0);
        params.add(&name, Tensor::from_vec(vec![1, values.len()], values));
    }
    params
}

/// A checkpoint exercising every section kind, built deterministically
/// from generated inputs.
fn checkpoint_from(
    specs: Vec<(String, usize, Vec<f64>)>,
    rng_state: [u64; 4],
    losses: Vec<f64>,
    tag: String,
    adam_t: u64,
) -> Checkpoint {
    let mut ck = Checkpoint::new();
    let params = params_from(specs);
    let moments = if adam_t > 0 {
        let ms: Vec<Tensor> =
            params.iter().map(|(_, t)| Tensor::zeros(t.shape().to_vec())).collect();
        Some((ms.clone(), ms))
    } else {
        None
    };
    ck.optim.insert(
        "model".into(),
        OptimState::Adam { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: adam_t, moments },
    );
    ck.params.insert("model".into(), params);
    ck.rng.insert("model".into(), rng_state);
    ck.vectors.insert("losses".into(), losses);
    ck.meta.insert("tag".into(), tag);
    ck.meta.insert("stage".into(), "2".into());
    ck
}

mb_check::check! {
    #![config(cases = 32)]

    fn checkpoints_round_trip_exactly(
        specs in gen::vec_of(
            (key_name(), gen::usize_in(1..6), gen::vec_of(gen::f64_normal_or_zero(), 1..12)),
            1..4,
        ),
        s0 in gen::u64_any(),
        s1 in gen::u64_any(),
        losses in gen::vec_of(gen::f64_normal_or_zero(), 0..10),
        adam_t in gen::u64_in(0..50),
    ) {
        let ck = checkpoint_from(specs, [s0, s1, s0 ^ s1, !s0], losses, "t".into(), adam_t);
        let bytes = ck.to_bytes().expect("finite checkpoint serializes");
        let parsed = Checkpoint::from_bytes(&bytes).expect("round trip parse");
        prop_assert_eq!(parsed, ck);
    }

    fn any_single_bit_flip_is_detected(
        byte_pick in gen::usize_in(0..10_000),
        bit in gen::usize_in(0..8),
        s0 in gen::u64_any(),
    ) {
        let ck = checkpoint_from(
            vec![("w".into(), 3, vec![1.5, -2.25, 0.5])],
            [s0, 1, 2, 3],
            vec![0.25, 0.125],
            "flip".into(),
            7,
        );
        let mut bytes = ck.to_bytes().expect("serialize");
        let idx = byte_pick % bytes.len();
        bytes[idx] ^= 1 << bit;
        match Checkpoint::from_bytes(&bytes) {
            // A flip in ignorable space (none exists in v2) would be
            // acceptable only if the result is exactly the original.
            Ok(loaded) => prop_assert_eq!(loaded, ck),
            Err(_) => prop_assert!(true),
        }
    }

    fn any_truncation_is_detected(
        cut in gen::usize_in(0..10_000),
        s0 in gen::u64_any(),
    ) {
        let ck = checkpoint_from(
            vec![("w".into(), 2, vec![3.0, -4.0])],
            [s0, 5, 6, 7],
            vec![1.0],
            "cut".into(),
            3,
        );
        let bytes = ck.to_bytes().expect("serialize");
        let keep = cut % bytes.len(); // strict prefix
        let loaded = Checkpoint::from_bytes(&bytes[..keep]);
        prop_assert!(loaded.is_err(), "prefix of {keep}/{} bytes parsed", bytes.len());
    }

    fn parser_never_panics_on_garbage(garbage in gen::vec_of(gen::usize_in(0..256), 0..300)) {
        let bytes: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        let _ = Checkpoint::from_bytes(&bytes);
    }
}
