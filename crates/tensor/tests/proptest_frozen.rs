//! Property tests pinning the tape-free frozen forward (DESIGN.md §12)
//! to the tape ops **bit for bit** on adversarial inputs: the frozen
//! path may skip gradient bookkeeping, but every arithmetic chain —
//! accumulation order, eps branches, empty bags — must be untouched,
//! at every thread count.

use mb_check::gen;
use mb_check::prop_assert_eq;
use mb_common::Rng;
use mb_par::Threads;
use mb_tensor::frozen::{self, FrozenParams};
use mb_tensor::tape::Tape;
use mb_tensor::{Params, Tensor};

/// Magnitudes spanning ~30 orders plus exact zeros and negatives, so
/// any reordering of an accumulation chain flips an output bit.
fn adversarial(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            let mag = rng.below(31) as i32 - 15;
            let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
            match rng.below(8) {
                0 => 0.0,
                _ => sign * rng.f64() * 10f64.powi(mag),
            }
        })
        .collect();
    Tensor::from_vec(vec![rows, cols], data)
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

mb_check::check! {
    #![config(cases = 48)]

    fn frozen_linear_matches_tape_at_any_thread_count(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, d, o) = (1 + rng.below(40), 1 + rng.below(33), 1 + rng.below(17));
        let x = adversarial(n, d, seed ^ 1);
        let w = adversarial(d, o, seed ^ 2);
        let b = {
            let row = adversarial(1, o, seed ^ 3);
            Tensor::from_vec(vec![o], row.data().to_vec())
        };
        for t in [1usize, 2, 3, 4] {
            let threads = Threads::new(t);
            let mut tape = Tape::with_threads(threads);
            let (xv, wv, bv) = (tape.leaf(x.clone()), tape.leaf(w.clone()), tape.leaf(b.clone()));
            let lv = tape.linear(xv, wv, bv);
            let want = tape.value(lv).clone();
            let got = frozen::linear(&x, &w, &b, threads);
            prop_assert_eq!(bits(&got), bits(&want), "n={} d={} o={} threads={}", n, d, o, t);
        }
    }

    fn frozen_pointwise_ops_match_tape(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (n, d) = (1 + rng.below(24), 1 + rng.below(24));
        let mut x = adversarial(n, d, seed ^ 4);
        // An all-zero row exercises the eps branch of the normaliser.
        for v in x.row_mut(rng.below(n)) {
            *v = 0.0;
        }
        let y = adversarial(n, d, seed ^ 5);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let yv = tape.leaf(y.clone());
        let th = tape.tanh(xv);
        let no = tape.row_l2_normalize(xv, 1e-9);
        let dt = tape.rows_dot(xv, yv);
        prop_assert_eq!(bits(&frozen::tanh(&x)), bits(tape.value(th)));
        prop_assert_eq!(bits(&frozen::row_l2_normalize(&x, 1e-9)), bits(tape.value(no)));
        prop_assert_eq!(bits(&frozen::rows_dot(&x, &y)), bits(tape.value(dt)));
    }

    fn frozen_bag_embed_matches_tape(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let (vocab, d) = (2 + rng.below(40), 1 + rng.below(16));
        let table = adversarial(vocab, d, seed ^ 6);
        // Repeated ids, empty bags, and singletons all included.
        let bags: Vec<Vec<u32>> = (0..rng.below(10))
            .map(|_| (0..rng.below(7)).map(|_| rng.below(vocab) as u32).collect())
            .collect();
        let mut tape = Tape::new();
        let tv = tape.leaf(table.clone());
        let bv = tape.bag_embed(tv, bags.clone());
        let want = tape.value(bv).clone();
        prop_assert_eq!(bits(&frozen::bag_embed(&table, &bags)), bits(&want));
    }

    fn frozen_params_resolve_identically_to_their_source(seed in gen::u64_any()) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut params = Params::default();
        let ids: Vec<_> = (0..1 + rng.below(6))
            .map(|i| {
                let t = adversarial(1 + rng.below(8), 1 + rng.below(8), seed ^ (7 + i as u64));
                params.add(format!("p{i}"), t)
            })
            .collect();
        let snap = FrozenParams::freeze(&params);
        prop_assert_eq!(snap.len(), ids.len());
        prop_assert_eq!(snap.numel(), params.numel());
        for id in ids {
            prop_assert_eq!(bits(snap.get(id)), bits(params.get(id)));
        }
        // Handles share one allocation — the whole point of freezing.
        let handle = snap.clone();
        assert!(handle.shares_storage(&snap));
    }
}
