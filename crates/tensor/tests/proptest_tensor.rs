//! Property-based tests of tensor algebra and autodiff invariants.

use mb_check::gen::{self, F64In, VecGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_tensor::{Tape, Tensor};

fn vec_f64(len: usize) -> VecGen<F64In> {
    gen::vec_of(gen::f64_in(-10.0..10.0), len)
}

mb_check::check! {
    #![config(cases = 64)]

    fn add_is_commutative_and_associative(a in vec_f64(12), b in vec_f64(12), c in vec_f64(12)) {
        let ta = Tensor::from_vec(vec![3, 4], a);
        let tb = Tensor::from_vec(vec![3, 4], b);
        let tc = Tensor::from_vec(vec![3, 4], c);
        let ab = ta.add(&tb);
        let ba = tb.add(&ta);
        for (x, y) in ab.data().iter().zip(ba.data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
        let left = ta.add(&tb).add(&tc);
        let right = ta.add(&tb.add(&tc));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    fn matmul_distributes_over_addition(a in vec_f64(6), b in vec_f64(6), c in vec_f64(6)) {
        // (A + B) C == AC + BC
        let ta = Tensor::from_vec(vec![2, 3], a);
        let tb = Tensor::from_vec(vec![2, 3], b);
        let tc = Tensor::from_vec(vec![3, 2], c);
        let lhs = ta.add(&tb).matmul(&tc);
        let rhs = ta.matmul(&tc).add(&tb.matmul(&tc));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    fn transpose_is_involutive_and_preserves_norm(a in vec_f64(20)) {
        let t = Tensor::from_vec(vec![4, 5], a);
        let tt = t.transpose().transpose();
        prop_assert_eq!(t.clone(), tt);
        prop_assert!((t.norm() - t.transpose().norm()).abs() < 1e-12);
    }

    fn grad_of_sum_is_ones(a in vec_f64(8)) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![8], a));
        let s = tape.sum_all(x);
        let g = tape.backward(s);
        for v in g.get(x).unwrap().data() {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }

    fn grad_is_linear_in_upstream_scale(a in vec_f64(6), k in gen::f64_in(-3.0..3.0)) {
        // d(k·f)/dx == k · df/dx for f = sum(tanh(x)).
        let x0 = Tensor::from_vec(vec![6], a);
        let grad_of = |scale: f64| {
            let mut tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let h = tape.tanh(x);
            let s = tape.sum_all(h);
            let scaled = tape.scale(s, scale);
            let g = tape.backward(scaled);
            g.get(x).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let gk = grad_of(k);
        for (x, y) in g1.data().iter().zip(gk.data()) {
            prop_assert!((k * x - y).abs() < 1e-9);
        }
    }

    fn row_l2_normalize_produces_unit_rows(a in vec_f64(15)) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3, 5], a));
        let y = tape.row_l2_normalize(x, 1e-9);
        for i in 0..3 {
            let n: f64 = tape.value(y).row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            // Unit, unless the input row was (near) zero.
            prop_assert!(n < 1.0 + 1e-9);
            let input_norm: f64 = tape.value(x).row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            if input_norm > 1e-6 {
                prop_assert!((n - 1.0).abs() < 1e-9);
            }
        }
    }

    fn in_batch_neg_loss_is_finite_and_excluding_gold_increases_it(a in vec_f64(16)) {
        let scores = Tensor::from_vec(vec![4, 4], a);
        let loss_with = {
            let mut tape = Tape::new();
            let s = tape.leaf(scores.clone());
            let l = tape.in_batch_neg_loss(s, false);
            tape.value(l).clone()
        };
        let loss_without = {
            let mut tape = Tape::new();
            let s = tape.leaf(scores);
            let l = tape.in_batch_neg_loss(s, true);
            tape.value(l).clone()
        };
        for (w, wo) in loss_with.data().iter().zip(loss_without.data()) {
            prop_assert!(w.is_finite() && wo.is_finite());
            // Including the gold enlarges the denominator: lse over a
            // superset is >= lse over the subset.
            prop_assert!(w + 1e-9 >= *wo);
            // And the softmax-CE form is non-negative.
            prop_assert!(*w >= -1e-9);
        }
    }

    fn softmax_ce_rows_nonnegative(
        a in vec_f64(12),
        t0 in gen::usize_in(0..4),
        t1 in gen::usize_in(0..4),
        t2 in gen::usize_in(0..4),
    ) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3, 4], a));
        let l = tape.softmax_ce_rows(x, vec![t0, t1, t2]);
        for v in tape.value(l).data() {
            prop_assert!(*v >= -1e-9 && v.is_finite());
        }
    }
}
