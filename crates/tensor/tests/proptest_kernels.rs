//! Property tests pinning the cache-blocked matmul kernels to the
//! naive reference — **exactly**, by bit pattern, not within a
//! tolerance. Blocking and parallel dispatch may only regroup which
//! output elements are computed together; each element's accumulation
//! chain (ascending inner-dimension fold, separate multiply and add)
//! must be untouched. Shapes are sampled adversarially around the
//! register-tile (4x16), panel (KC=256), and band (MC=128) boundaries.

use mb_check::gen;
use mb_check::prop_assert_eq;
use mb_common::Rng;
use mb_tensor::kernels::matmul_reference;
use mb_tensor::Tensor;

/// Dims that straddle every dispatch/blocking boundary: the tiny
/// fallback path, partial register tiles, exact tiles, and a final
/// value past the KC panel width.
const EDGE_DIMS: &[usize] = &[1, 2, 3, 4, 5, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 129, 257];

fn dim(seed: u64, which: u64) -> usize {
    let mut rng = Rng::seed_from_u64(seed ^ (which.wrapping_mul(0x9e3779b97f4a7c15)));
    EDGE_DIMS[rng.below(EDGE_DIMS.len())]
}

/// Fill with magnitudes spanning ~30 orders plus exact zeros and
/// negatives, so any reordering of an accumulation chain would show up
/// as a differing bit pattern.
fn adversarial(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            let mag = rng.below(31) as i32 - 15;
            let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
            match rng.below(8) {
                0 => 0.0,
                _ => sign * rng.f64() * 10f64.powi(mag),
            }
        })
        .collect();
    Tensor::from_vec(vec![rows, cols], data)
}

mb_check::check! {
    #![config(cases = 48)]

    fn blocked_matmul_is_bit_identical_to_reference(seed in gen::u64_any()) {
        let (m, k, n) = (dim(seed, 1), dim(seed, 2), dim(seed, 3));
        let a = adversarial(m, k, seed ^ 1);
        let b = adversarial(k, n, seed ^ 2);
        let want: Vec<u64> = matmul_reference(&a, &b, false)
            .data().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = a.matmul(&b).data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&want, &got, "m={} k={} n={}", m, k, n);
        // Parallel dispatch partitions rows into fixed MC bands; the
        // band a row lands in never changes its accumulation chain.
        for threads in [2usize, 3, 4] {
            let par: Vec<u64> = a.matmul_with(&b, mb_par::Threads::new(threads))
                .data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&want, &par, "m={} k={} n={} threads={}", m, k, n, threads);
        }
    }

    fn blocked_matmul_t_is_bit_identical_to_reference(seed in gen::u64_any()) {
        let (m, k, n) = (dim(seed, 4), dim(seed, 5), dim(seed, 6));
        let a = adversarial(m, k, seed ^ 3);
        let b = adversarial(n, k, seed ^ 4); // transposed operand: n x k
        let want: Vec<u64> = matmul_reference(&a, &b, true)
            .data().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = a.matmul_t(&b).data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&want, &got, "m={} k={} n={}", m, k, n);
        for threads in [2usize, 4] {
            let par: Vec<u64> = a.matmul_t_with(&b, mb_par::Threads::new(threads))
                .data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&want, &par, "m={} k={} n={} threads={}", m, k, n, threads);
        }
    }

    fn special_values_propagate_identically(seed in gen::u64_any()) {
        // Infinities and NaN payloads must flow through the blocked
        // kernel exactly as through the reference: 0 * inf = NaN is the
        // reason the kernels never skip zero terms.
        let (m, k, n) = (dim(seed, 7).max(4), dim(seed, 8).max(16), dim(seed, 9).max(16));
        let mut a = adversarial(m, k, seed ^ 5);
        let mut b = adversarial(k, n, seed ^ 6);
        let mut rng = Rng::seed_from_u64(seed ^ 7);
        for _ in 0..4 {
            let ai = rng.below(m * k);
            let bi = rng.below(k * n);
            if let Some(v) = a.data_mut().get_mut(ai) {
                *v = f64::INFINITY;
            }
            if let Some(v) = b.data_mut().get_mut(bi) {
                *v = 0.0;
            }
        }
        let want: Vec<u64> = matmul_reference(&a, &b, false)
            .data().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = a.matmul(&b).data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&want, &got, "m={} k={} n={}", m, k, n);
    }
}
