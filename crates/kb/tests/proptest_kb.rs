//! Property-based tests of knowledge-base index consistency.

use mb_kb::bm25::{Bm25Index, Bm25Params};
use mb_kb::{EntityId, KbBuilder};
use proptest::prelude::*;

fn title_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{2,7}", 1..4).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn title_index_finds_every_inserted_title(titles in proptest::collection::vec(title_strategy(), 1..30)) {
        let mut b = KbBuilder::new();
        let d = b.domain("D");
        let ids: Vec<EntityId> = titles
            .iter()
            .map(|t| b.add_entity(t, "desc words here", d))
            .collect();
        let kb = b.build().unwrap();
        for (t, id) in titles.iter().zip(&ids) {
            prop_assert!(kb.by_title(t).contains(id), "title {t:?} lost");
            // Case-insensitive.
            prop_assert!(kb.by_title(&t.to_uppercase()).contains(id));
        }
        prop_assert_eq!(kb.len(), titles.len());
    }

    #[test]
    fn token_candidates_only_return_entities_sharing_a_token(
        titles in proptest::collection::vec(title_strategy(), 2..20),
        query in title_strategy(),
    ) {
        let mut b = KbBuilder::new();
        let d = b.domain("D");
        for t in &titles {
            b.add_entity(t, "", d);
        }
        let kb = b.build().unwrap();
        let qtokens: std::collections::HashSet<String> =
            mb_text::tokenize(&query).into_iter().collect();
        for id in kb.token_candidates(&query, 50) {
            let title_tokens: std::collections::HashSet<String> =
                mb_text::tokenize(&kb.entity(id).title).into_iter().collect();
            prop_assert!(
                !qtokens.is_disjoint(&title_tokens),
                "candidate shares no token with the query"
            );
        }
    }

    #[test]
    fn bm25_scores_are_positive_and_only_for_matching_docs(
        docs in proptest::collection::vec(title_strategy(), 1..20),
        query in title_strategy(),
    ) {
        let ix = Bm25Index::build(
            docs.iter()
                .enumerate()
                .map(|(i, t)| (EntityId(i as u32), t.as_str())),
            Bm25Params::default(),
        );
        let qtokens: std::collections::HashSet<String> =
            mb_text::tokenize(&query).into_iter().collect();
        for (id, score) in ix.top_k(&query, docs.len()) {
            prop_assert!(score > 0.0);
            let doc_tokens: std::collections::HashSet<String> =
                mb_text::tokenize(&docs[id.0 as usize]).into_iter().collect();
            prop_assert!(!qtokens.is_disjoint(&doc_tokens));
        }
    }
}
