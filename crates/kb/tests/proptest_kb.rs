//! Property-based tests of knowledge-base index consistency.

use mb_check::gen::{self, StringGen, VecGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_kb::bm25::{Bm25Index, Bm25Params};
use mb_kb::{EntityId, KbBuilder};

/// 1–3 lowercase words; joined with spaces in the property bodies
/// (generating the word vector directly keeps shrinking useful).
fn title_words() -> VecGen<StringGen<gen::CharIn>> {
    gen::vec_of(gen::lowercase_string(2..=7), 1..4)
}

mb_check::check! {
    #![config(cases = 32)]

    fn title_index_finds_every_inserted_title(title_ws in gen::vec_of(title_words(), 1..30)) {
        let titles: Vec<String> = title_ws.iter().map(|ws| ws.join(" ")).collect();
        let mut b = KbBuilder::new();
        let d = b.domain("D").unwrap();
        let ids: Vec<EntityId> = titles
            .iter()
            .map(|t| b.add_entity(t, "desc words here", d).unwrap())
            .collect();
        let kb = b.build().unwrap();
        for (t, id) in titles.iter().zip(&ids) {
            prop_assert!(kb.by_title(t).contains(id), "title {t:?} lost");
            // Case-insensitive.
            prop_assert!(kb.by_title(&t.to_uppercase()).contains(id));
        }
        prop_assert_eq!(kb.len(), titles.len());
    }

    fn token_candidates_only_return_entities_sharing_a_token(
        title_ws in gen::vec_of(title_words(), 2..20),
        query_ws in title_words(),
    ) {
        let query = query_ws.join(" ");
        let mut b = KbBuilder::new();
        let d = b.domain("D").unwrap();
        for ws in &title_ws {
            b.add_entity(&ws.join(" "), "", d).unwrap();
        }
        let kb = b.build().unwrap();
        let qtokens: std::collections::HashSet<String> =
            mb_text::tokenize(&query).into_iter().collect();
        for id in kb.token_candidates(&query, 50) {
            let title_tokens: std::collections::HashSet<String> =
                mb_text::tokenize(&kb.entity(id).title).into_iter().collect();
            prop_assert!(
                !qtokens.is_disjoint(&title_tokens),
                "candidate shares no token with the query"
            );
        }
    }

    fn bm25_scores_are_positive_and_only_for_matching_docs(
        doc_ws in gen::vec_of(title_words(), 1..20),
        query_ws in title_words(),
    ) {
        let docs: Vec<String> = doc_ws.iter().map(|ws| ws.join(" ")).collect();
        let query = query_ws.join(" ");
        let ix = Bm25Index::build(
            docs.iter()
                .enumerate()
                .map(|(i, t)| (EntityId(i as u32), t.as_str())),
            Bm25Params::default(),
        );
        let qtokens: std::collections::HashSet<String> =
            mb_text::tokenize(&query).into_iter().collect();
        for (id, score) in ix.top_k(&query, docs.len()) {
            prop_assert!(score > 0.0);
            let doc_tokens: std::collections::HashSet<String> =
                mb_text::tokenize(&docs[id.0 as usize]).into_iter().collect();
            prop_assert!(!qtokens.is_disjoint(&doc_tokens));
        }
    }
}
