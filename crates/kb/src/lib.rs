//! # mb-kb
//!
//! Knowledge-base substrate for metablink-rs.
//!
//! A [`KnowledgeBase`] stores entities (title + description), domain
//! partitions, relations and fact triples, and maintains the lookup
//! structures entity linking needs: an exact-title index (for the Name
//! Matching baseline and exact-match supervision), an alias table
//! (available for *source* domains only, mirroring the paper's premise
//! that target-domain dictionaries lack such resources), and an inverted
//! token index over titles (for IR-style candidate generation).

#![warn(missing_docs)]

pub mod bm25;
pub mod entity;
pub mod index;
pub mod store;

pub use entity::{DomainId, Entity, EntityId, RelationId, Triple};
pub use store::{KbBuilder, KnowledgeBase};
