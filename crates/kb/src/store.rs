//! The frozen knowledge base and its builder.

use crate::entity::{DomainId, Entity, EntityId, RelationId, Triple};
use crate::index::{AliasTable, TitleIndex, TokenIndex};
use mb_common::{Error, Result};
use std::collections::BTreeMap;

/// Mutable builder for a [`KnowledgeBase`].
#[derive(Debug, Default)]
pub struct KbBuilder {
    domains: Vec<String>,
    domain_ids: BTreeMap<String, DomainId>,
    relations: Vec<String>,
    relation_ids: BTreeMap<String, RelationId>,
    entities: Vec<Entity>,
    aliases: Vec<(String, EntityId)>,
    triples: Vec<Triple>,
}

impl KbBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        KbBuilder::default()
    }

    /// Register (or look up) a domain by name.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the input holds more
    /// domains than the `u16` id space — oversized inputs are a data
    /// problem the loader should surface, not abort on.
    pub fn domain(&mut self, name: &str) -> Result<DomainId> {
        if let Some(&id) = self.domain_ids.get(name) {
            return Ok(id);
        }
        let id = DomainId(u16::try_from(self.domains.len()).map_err(|_| {
            Error::InvalidConfig(format!("too many domains: id space is u16, adding {name:?}"))
        })?);
        self.domains.push(name.to_string());
        self.domain_ids.insert(name.to_string(), id);
        Ok(id)
    }

    /// Register (or look up) a relation type by name.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the input holds more
    /// relation types than the `u16` id space.
    pub fn relation(&mut self, name: &str) -> Result<RelationId> {
        if let Some(&id) = self.relation_ids.get(name) {
            return Ok(id);
        }
        let id = RelationId(u16::try_from(self.relations.len()).map_err(|_| {
            Error::InvalidConfig(format!("too many relations: id space is u16, adding {name:?}"))
        })?);
        self.relations.push(name.to_string());
        self.relation_ids.insert(name.to_string(), id);
        Ok(id)
    }

    /// Add an entity, returning its id.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the input holds more
    /// entities than the `u32` id space.
    pub fn add_entity(
        &mut self,
        title: &str,
        description: &str,
        domain: DomainId,
    ) -> Result<EntityId> {
        let id = EntityId(u32::try_from(self.entities.len()).map_err(|_| {
            Error::InvalidConfig(format!("too many entities: id space is u32, adding {title:?}"))
        })?);
        self.entities.push(Entity {
            id,
            title: title.to_string(),
            description: description.to_string(),
            domain,
        });
        Ok(id)
    }

    /// Add an alias surface form for an entity (source domains only, by
    /// convention — the builder does not enforce it, the data generator
    /// does).
    pub fn add_alias(&mut self, alias: &str, id: EntityId) {
        self.aliases.push((alias.to_string(), id));
    }

    /// Add a fact triple.
    pub fn add_triple(&mut self, head: EntityId, relation: RelationId, tail: EntityId) {
        self.triples.push(Triple { head, relation, tail });
    }

    /// Freeze into an indexed [`KnowledgeBase`].
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] if an alias or triple references a
    /// non-existent entity.
    pub fn build(self) -> Result<KnowledgeBase> {
        let n = self.entities.len();
        let check = |id: EntityId| -> Result<()> {
            if (id.0 as usize) < n {
                Ok(())
            } else {
                Err(Error::NotFound(format!("entity id {} (kb has {n})", id.0)))
            }
        };
        let mut title_index = TitleIndex::new();
        let mut token_index = TokenIndex::new();
        for e in &self.entities {
            title_index.insert(&e.title, e.id);
            token_index.insert_title(&e.title, e.id);
        }
        let mut alias_table = AliasTable::new();
        for (alias, id) in &self.aliases {
            check(*id)?;
            alias_table.insert(alias, *id);
        }
        let mut outgoing: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); n];
        for t in &self.triples {
            check(t.head)?;
            check(t.tail)?;
            // mb-lint: allow(indexing) -- check(t.head) above proves head < n
            outgoing[t.head.0 as usize].push((t.relation, t.tail));
        }
        let mut by_domain: Vec<Vec<EntityId>> = vec![Vec::new(); self.domains.len()];
        for e in &self.entities {
            // mb-lint: allow(indexing) -- domain ids are issued by this builder, < domains.len()
            by_domain[e.domain.0 as usize].push(e.id);
        }
        Ok(KnowledgeBase {
            domains: self.domains,
            relations: self.relations,
            entities: self.entities,
            triples: self.triples,
            title_index,
            alias_table,
            token_index,
            outgoing,
            by_domain,
        })
    }
}

/// A frozen, indexed knowledge base `G = {E; R; T}`.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    domains: Vec<String>,
    relations: Vec<String>,
    entities: Vec<Entity>,
    triples: Vec<Triple>,
    title_index: TitleIndex,
    alias_table: AliasTable,
    token_index: TokenIndex,
    outgoing: Vec<Vec<(RelationId, EntityId)>>,
    by_domain: Vec<Vec<EntityId>>,
}

impl KnowledgeBase {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if the KB has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Borrow an entity.
    ///
    /// # Panics
    /// Panics on out-of-range ids (they can only come from a different
    /// KB, which is a programming error).
    pub fn entity(&self, id: EntityId) -> &Entity {
        // mb-lint: allow(indexing) -- documented `# Panics` contract: foreign ids are a caller bug
        &self.entities[id.0 as usize]
    }

    /// All entities in id order.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// All fact triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// A domain's name.
    pub fn domain_name(&self, id: DomainId) -> &str {
        // mb-lint: allow(indexing) -- ids are issued densely by KbBuilder; foreign ids are a caller bug
        &self.domains[id.0 as usize]
    }

    /// Find a domain id by name.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for unknown names.
    pub fn domain_by_name(&self, name: &str) -> Result<DomainId> {
        self.domains
            .iter()
            .position(|d| d == name)
            .map(|i| DomainId(i as u16))
            .ok_or_else(|| Error::NotFound(format!("domain {name:?}")))
    }

    /// A relation's name.
    pub fn relation_name(&self, id: RelationId) -> &str {
        // mb-lint: allow(indexing) -- ids are issued densely by KbBuilder; foreign ids are a caller bug
        &self.relations[id.0 as usize]
    }

    /// Entity ids belonging to a domain, in id order.
    pub fn domain_entities(&self, domain: DomainId) -> &[EntityId] {
        // mb-lint: allow(indexing) -- by_domain has one slot per issued DomainId
        &self.by_domain[domain.0 as usize]
    }

    /// Entities whose title exactly matches `name` (canonicalised).
    pub fn by_title(&self, name: &str) -> &[EntityId] {
        self.title_index.lookup(name)
    }

    /// Entities known under `alias` in the alias table.
    pub fn by_alias(&self, alias: &str) -> &[EntityId] {
        self.alias_table.lookup(alias)
    }

    /// IR-style candidates: entities ranked by title-token overlap with
    /// `query`, at most `k`.
    pub fn token_candidates(&self, query: &str, k: usize) -> Vec<EntityId> {
        self.token_index.candidates(query, k)
    }

    /// Outgoing `(relation, tail)` edges of an entity.
    pub fn neighbors(&self, id: EntityId) -> &[(RelationId, EntityId)] {
        // mb-lint: allow(indexing) -- outgoing has one slot per entity; foreign ids are a caller bug
        &self.outgoing[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let lego = b.domain("Lego").unwrap();
        let tv = b.domain("Doctor Who").unwrap();
        let part_of = b.relation("part_of").unwrap();
        let brick = b.add_entity("Red Brick", "a red building brick", lego).unwrap();
        let set = b.add_entity("Castle Set (2015)", "a castle-themed set", lego).unwrap();
        let doctor = b.add_entity("The Doctor", "a time traveller", tv).unwrap();
        b.add_alias("big red", brick);
        b.add_triple(brick, part_of, set);
        let _ = doctor;
        b.build().unwrap()
    }

    #[test]
    fn entities_and_domains() {
        let kb = sample_kb();
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.num_domains(), 2);
        let lego = kb.domain_by_name("Lego").unwrap();
        assert_eq!(kb.domain_entities(lego).len(), 2);
        assert_eq!(kb.domain_name(lego), "Lego");
        assert!(kb.domain_by_name("Fallout").is_err());
    }

    #[test]
    fn dedup_domain_and_relation_registration() {
        let mut b = KbBuilder::new();
        let a = b.domain("X").unwrap();
        let a2 = b.domain("X").unwrap();
        assert_eq!(a, a2);
        let r = b.relation("rel").unwrap();
        let r2 = b.relation("rel").unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn title_and_alias_lookup() {
        let kb = sample_kb();
        let hits = kb.by_title("red brick");
        assert_eq!(hits.len(), 1);
        assert_eq!(kb.entity(hits[0]).title, "Red Brick");
        assert_eq!(kb.by_alias("BIG RED").len(), 1);
        assert!(kb.by_title("unknown").is_empty());
    }

    #[test]
    fn token_candidates_cross_domain() {
        let kb = sample_kb();
        let c = kb.token_candidates("castle set", 5);
        assert_eq!(kb.entity(c[0]).title, "Castle Set (2015)");
    }

    #[test]
    fn neighbors_follow_triples() {
        let kb = sample_kb();
        let brick = kb.by_title("red brick")[0];
        let n = kb.neighbors(brick);
        assert_eq!(n.len(), 1);
        assert_eq!(kb.entity(n[0].1).title, "Castle Set (2015)");
        assert_eq!(kb.relation_name(n[0].0), "part_of");
    }

    #[test]
    fn build_rejects_dangling_references() {
        let mut b = KbBuilder::new();
        let d = b.domain("D").unwrap();
        let e = b.add_entity("A", "a", d).unwrap();
        b.add_alias("ghost", EntityId(99));
        let _ = e;
        assert!(b.build().is_err());

        let mut b2 = KbBuilder::new();
        let d2 = b2.domain("D").unwrap();
        let e2 = b2.add_entity("A", "a", d2).unwrap();
        let r = b2.relation("r").unwrap();
        b2.add_triple(e2, r, EntityId(42));
        assert!(b2.build().is_err());
    }

    #[test]
    fn empty_kb_is_valid() {
        let kb = KbBuilder::new().build().unwrap();
        assert!(kb.is_empty());
        assert_eq!(kb.num_domains(), 0);
    }
}
