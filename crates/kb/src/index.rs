//! Lookup structures over a frozen entity set.
//!
//! All keys are the *canonical* tokenized form (lowercase, punctuation
//! stripped, single-space joined) so lookups are robust to case and
//! punctuation — the same canonicalisation `mb-text` uses everywhere.

use crate::entity::EntityId;
use mb_text::tokenizer::{detokenize, tokenize};
use std::collections::BTreeMap;

/// Canonicalise a surface string for index keys.
pub fn canonical(s: &str) -> String {
    detokenize(&tokenize(s))
}

/// Exact-title index: canonical title → entities carrying it.
///
/// Multiple entities can share a title string across domains (and even
/// within one: think disambiguation-free duplicates), so values are
/// vectors in insertion order.
#[derive(Debug, Clone, Default)]
pub struct TitleIndex {
    map: BTreeMap<String, Vec<EntityId>>,
}

impl TitleIndex {
    /// Empty index.
    pub fn new() -> Self {
        TitleIndex::default()
    }

    /// Register an entity under its title.
    pub fn insert(&mut self, title: &str, id: EntityId) {
        self.map.entry(canonical(title)).or_default().push(id);
    }

    /// Entities whose title matches `name` exactly (canonicalised).
    pub fn lookup(&self, name: &str) -> &[EntityId] {
        self.map.get(&canonical(name)).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct canonical titles.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no titles are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Alias table: alternative surface forms → entities. In the paper's
/// setting this powerful resource exists for rich source domains but is
/// *unavailable* in the few-shot target domains; `mb-datagen` only
/// populates it for training domains.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    map: BTreeMap<String, Vec<EntityId>>,
}

impl AliasTable {
    /// Empty table.
    pub fn new() -> Self {
        AliasTable::default()
    }

    /// Register an alias for an entity.
    pub fn insert(&mut self, alias: &str, id: EntityId) {
        let key = canonical(alias);
        let ids = self.map.entry(key).or_default();
        if !ids.contains(&id) {
            ids.push(id);
        }
    }

    /// Entities known under `alias`.
    pub fn lookup(&self, alias: &str) -> &[EntityId] {
        self.map.get(&canonical(alias)).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct aliases.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the table has no aliases.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Inverted token index over entity titles: token → posting list of
/// entities whose title contains the token. Posting lists are kept
/// sorted and deduplicated.
#[derive(Debug, Clone, Default)]
pub struct TokenIndex {
    map: BTreeMap<String, Vec<EntityId>>,
}

impl TokenIndex {
    /// Empty index.
    pub fn new() -> Self {
        TokenIndex::default()
    }

    /// Index an entity's title tokens.
    pub fn insert_title(&mut self, title: &str, id: EntityId) {
        for tok in tokenize(title) {
            let posting = self.map.entry(tok).or_default();
            if posting.last() != Some(&id) {
                posting.push(id);
            }
        }
    }

    /// Posting list for a token (empty for unknown tokens).
    pub fn posting(&self, token: &str) -> &[EntityId] {
        self.map.get(token).map_or(&[], Vec::as_slice)
    }

    /// Entities ranked by how many of `query`'s distinct tokens appear
    /// in their title, descending, ties broken by id. At most `k`
    /// results. This is the traditional-IR candidate generator used by
    /// the `Logeswaran et al.`-style comparison path.
    pub fn candidates(&self, query: &str, k: usize) -> Vec<EntityId> {
        let mut counts: BTreeMap<EntityId, usize> = BTreeMap::new();
        let mut seen_tokens = std::collections::BTreeSet::new();
        for tok in tokenize(query) {
            if !seen_tokens.insert(tok.clone()) {
                continue;
            }
            for &id in self.posting(&tok) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut scored: Vec<(EntityId, usize)> = counts.into_iter().collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored.into_iter().map(|(id, _)| id).collect()
    }

    /// [`TokenIndex::candidates`] for a batch of queries, split across
    /// workers. Each query is resolved wholly within one worker and
    /// ranking ties break by entity id, so results are identical for
    /// any [`mb_par::Threads`] value.
    pub fn candidates_batch(
        &self,
        queries: &[String],
        k: usize,
        threads: mb_par::Threads,
    ) -> Vec<Vec<EntityId>> {
        mb_par::par_map(threads, queries, |_, q| self.candidates(q, k))
    }

    /// Number of distinct tokens indexed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation() {
        assert_eq!(canonical("The GOLDEN-Master!"), "the golden master");
    }

    #[test]
    fn title_index_is_case_insensitive() {
        let mut ix = TitleIndex::new();
        ix.insert("The Curse", EntityId(3));
        assert_eq!(ix.lookup("the curse"), &[EntityId(3)]);
        assert_eq!(ix.lookup("THE CURSE!"), &[EntityId(3)]);
        assert!(ix.lookup("missing").is_empty());
    }

    #[test]
    fn title_index_collects_duplicates() {
        let mut ix = TitleIndex::new();
        ix.insert("Mercury", EntityId(1));
        ix.insert("mercury", EntityId(2));
        assert_eq!(ix.lookup("Mercury"), &[EntityId(1), EntityId(2)]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn alias_table_dedups_per_alias() {
        let mut t = AliasTable::new();
        t.insert("big blue", EntityId(7));
        t.insert("Big Blue", EntityId(7));
        t.insert("big blue", EntityId(8));
        assert_eq!(t.lookup("BIG blue"), &[EntityId(7), EntityId(8)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn token_index_candidates_ranked_by_overlap() {
        let mut ix = TokenIndex::new();
        ix.insert_title("red dragon", EntityId(0));
        ix.insert_title("blue dragon", EntityId(1));
        ix.insert_title("red castle", EntityId(2));
        let c = ix.candidates("red dragon lair", 10);
        assert_eq!(c[0], EntityId(0)); // matches both tokens
        assert_eq!(c.len(), 3);
        let c1 = ix.candidates("red dragon", 1);
        assert_eq!(c1, vec![EntityId(0)]);
    }

    #[test]
    fn token_index_repeated_query_tokens_count_once() {
        let mut ix = TokenIndex::new();
        ix.insert_title("red dragon", EntityId(0));
        ix.insert_title("blue dragon lair", EntityId(1));
        // "dragon dragon dragon" must not triple-count.
        let c = ix.candidates("dragon dragon dragon blue", 10);
        assert_eq!(c[0], EntityId(1));
    }

    #[test]
    fn empty_queries_yield_nothing() {
        let ix = TokenIndex::new();
        assert!(ix.candidates("anything", 5).is_empty());
        let ix2 = {
            let mut ix2 = TokenIndex::new();
            ix2.insert_title("a b", EntityId(0));
            ix2
        };
        assert!(ix2.candidates("", 5).is_empty());
    }
}
