//! Core knowledge-base value types.

/// Dense identifier of an entity within one [`crate::KnowledgeBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Dense identifier of a domain (a specialised entity dictionary such
/// as "Lego" or "YuGiOh").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u16);

/// Dense identifier of a relation type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u16);

/// A real-world object in the knowledge base: a Wikipedia-style page
/// with a title and a textual description, partitioned into a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// This entity's id (equal to its index in the KB).
    pub id: EntityId,
    /// Page title, possibly carrying a parenthesised disambiguation
    /// phrase, e.g. `"SORA (satellite)"`.
    pub title: String,
    /// Free-text description of the entity.
    pub description: String,
    /// The domain this entity belongs to.
    pub domain: DomainId,
}

/// A subject–relation–object fact triple `⟨h, r, t⟩ ∈ T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head (subject) entity.
    pub head: EntityId,
    /// Relation between head and tail.
    pub relation: RelationId,
    /// Tail (object) entity.
    pub tail: EntityId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(EntityId(1));
        s.insert(EntityId(1));
        s.insert(EntityId(2));
        assert_eq!(s.len(), 2);
        assert!(EntityId(1) < EntityId(2));
    }

    #[test]
    fn triple_equality() {
        let t1 = Triple { head: EntityId(0), relation: RelationId(1), tail: EntityId(2) };
        let t2 = t1;
        assert_eq!(t1, t2);
    }
}
