//! BM25 ranking over entity text — the "traditional IR techniques"
//! candidate generator that Logeswaran et al. used before dense
//! retrieval (discussed in the paper's related work). Serves as a
//! non-neural candidate-generation baseline and as a retrieval
//! comparison point in the micro-benchmarks.

use crate::entity::EntityId;
use mb_text::tokenizer::tokenize;
use std::collections::BTreeMap;

/// Standard BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical: 1.2).
    pub k1: f64,
    /// Length normalisation (typical: 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An immutable BM25 index over a set of entities' text.
#[derive(Debug, Clone)]
pub struct Bm25Index {
    params: Bm25Params,
    /// token → (doc slot, term frequency) postings.
    postings: BTreeMap<String, Vec<(u32, u32)>>,
    doc_len: Vec<u32>,
    avg_len: f64,
    ids: Vec<EntityId>,
}

impl Bm25Index {
    /// Index `(id, text)` pairs (e.g. title + description per entity).
    pub fn build<'a>(
        docs: impl IntoIterator<Item = (EntityId, &'a str)>,
        params: Bm25Params,
    ) -> Self {
        let mut postings: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
        let mut doc_len = Vec::new();
        let mut ids = Vec::new();
        for (slot, (id, text)) in docs.into_iter().enumerate() {
            let tokens = tokenize(text);
            let mut tf: BTreeMap<String, u32> = BTreeMap::new();
            for t in tokens.iter() {
                *tf.entry(t.clone()).or_insert(0) += 1;
            }
            for (t, c) in tf {
                postings.entry(t).or_default().push((slot as u32, c));
            }
            doc_len.push(tokens.len() as u32);
            ids.push(id);
        }
        let avg_len = if doc_len.is_empty() {
            0.0
        } else {
            doc_len.iter().map(|&l| l as f64).sum::<f64>() / doc_len.len() as f64
        };
        Bm25Index { params, postings, doc_len, avg_len, ids }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Robertson–Sparck-Jones idf with the usual +1 floor.
    fn idf(&self, token: &str) -> f64 {
        let n = self.ids.len() as f64;
        let df = self.postings.get(token).map_or(0, Vec::len) as f64;
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// Top-k documents for a free-text query, descending by BM25 score.
    /// Documents matching no query token are never returned.
    pub fn top_k(&self, query: &str, k: usize) -> Vec<(EntityId, f64)> {
        let mut scores: BTreeMap<u32, f64> = BTreeMap::new();
        let mut seen = std::collections::BTreeSet::new();
        for token in tokenize(query) {
            if !seen.insert(token.clone()) {
                continue;
            }
            let Some(posting) = self.postings.get(&token) else { continue };
            let idf = self.idf(&token);
            for &(slot, tf) in posting {
                let len_norm = 1.0 - self.params.b
                    + self.params.b * self.doc_len[slot as usize] as f64 / self.avg_len.max(1e-9);
                let tf = tf as f64;
                let term = idf * (tf * (self.params.k1 + 1.0)) / (tf + self.params.k1 * len_norm);
                *scores.entry(slot).or_insert(0.0) += term;
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.into_iter().map(|(slot, s)| (self.ids[slot as usize], s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bm25Index {
        Bm25Index::build(
            [
                (EntityId(0), "the red dragon guards the dragon hoard"),
                (EntityId(1), "a blue wizard in the tower"),
                (EntityId(2), "the dragon tower of the east"),
                (EntityId(3), "completely unrelated text about bricks"),
            ],
            Bm25Params::default(),
        )
    }

    #[test]
    fn ranks_by_term_relevance() {
        let ix = sample();
        let top = ix.top_k("red dragon", 4);
        assert_eq!(top[0].0, EntityId(0), "doc 0 has both terms and repeated dragon");
        // Non-matching docs are excluded entirely.
        assert!(top.iter().all(|(id, _)| *id != EntityId(3)));
        assert!(top.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let ix = sample();
        // "wizard" appears once in the corpus; "the" appears everywhere.
        let top = ix.top_k("the wizard", 1);
        assert_eq!(top[0].0, EntityId(1));
    }

    #[test]
    fn scores_decrease_down_the_ranking() {
        let ix = sample();
        let top = ix.top_k("dragon tower", 4);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn empty_query_and_empty_index() {
        let ix = sample();
        assert!(ix.top_k("", 5).is_empty());
        assert!(ix.top_k("zzznothing", 5).is_empty());
        let empty = Bm25Index::build(std::iter::empty(), Bm25Params::default());
        assert!(empty.is_empty());
        assert!(empty.top_k("anything", 3).is_empty());
    }

    #[test]
    fn repeated_query_tokens_count_once() {
        let ix = sample();
        let once = ix.top_k("dragon", 4);
        let thrice = ix.top_k("dragon dragon dragon", 4);
        assert_eq!(once, thrice);
    }

    #[test]
    fn k_caps_results() {
        let ix = sample();
        assert_eq!(ix.top_k("the", 2).len(), 2);
    }
}
