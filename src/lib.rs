//! # metablink
//!
//! Facade crate for **metablink-rs**, a full-system Rust reproduction of
//! *"Effective Few-Shot Named Entity Linking by Meta-Learning"*
//! (Li et al., ICDE 2022).
//!
//! This crate re-exports the public API of every workspace member so that
//! downstream users can depend on a single crate:
//!
//! ```
//! use metablink::prelude::*;
//!
//! let rng = Rng::seed_from_u64(42);
//! assert_eq!(rng.clone().next_u64(), rng.clone().next_u64());
//! ```
//!
//! See the README for the quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

#![warn(missing_docs)]

pub use mb_common as common;
pub use mb_core as core;
pub use mb_datagen as datagen;
pub use mb_encoders as encoders;
pub use mb_eval as eval;
pub use mb_kb as kb;
pub use mb_lint as lint;
pub use mb_nlg as nlg;
pub use mb_par as par;
pub use mb_serve as serve;
pub use mb_tensor as tensor;
pub use mb_text as text;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use mb_common::{Error, Result, Rng};
}
