//! `metablink` — command-line interface to the reproduction.
//!
//! ```text
//! metablink generate --seed 42 --scale small
//! metablink train    --seed 42 --scale small --domain Lego --method metablink --source syn+seed --out model_dir
//! metablink evaluate --model model_dir
//! metablink link     --model model_dir --left "after the duel, " --surface "the dark magician" --right " summoned a trap"
//! ```
//!
//! Checkpoints are plain-text parameter files plus a manifest recording
//! the benchmark configuration, so a model can be reloaded without
//! shipping the (deterministically regenerable) benchmark itself.

use metablink::common::storage::DiskStorage;
use metablink::common::Rng;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method, BI_KEY, CROSS_KEY};
use metablink::core::{LinkerConfig, TwoStageLinker};
use metablink::datagen::LinkedMention;
use metablink::encoders::biencoder::BiEncoder;
use metablink::encoders::crossencoder::CrossEncoder;
use metablink::eval::{ContextConfig, ExperimentContext};
use metablink::serve::{ModelLoader, ModelRegistry, ServeConfig, ServeModel, Server, ServerConfig};
use metablink::tensor::checkpoint::Checkpoint;
use metablink::tensor::serialize;
use metablink::text::OverlapCategory;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd == "lint" {
        // mb-lint owns its flag parsing (and its own --help).
        return ExitCode::from(metablink::lint::cli::run(rest));
    }
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = parse_flags(rest);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "train" => cmd_train(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "link" => cmd_link(&opts),
        "serve" => cmd_serve(&opts),
        // "lint" is dispatched above, before flag parsing.
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
metablink — few-shot entity linking by meta-learning (ICDE 2022 reproduction)

USAGE:
  metablink generate  --seed <u64> --scale <small|bench>
  metablink train     --seed <u64> --scale <small|bench> --domain <name>
                      --method <blink|dl4el|metablink> --source <seed|syn|syn+seed|syn*+seed|...>
                      --out <dir> [--threads <n>]
  metablink evaluate  --model <dir> [--limit <n>] [--threads <n>]
  metablink link      --model <dir> --surface <text> [--left <text>] [--right <text>] [--k <n>]
  metablink serve     --model <dir> [--addr <host:port>] [--addr-file <path>]
                      [--max-batch <n>] [--max-delay-us <n>] [--queue-capacity <n>]
                      [--cache-capacity <n>] [--workers <n>] [--threads <n>]
                      [--read-timeout-ms <n>] [--reply-timeout-ms <n>]
                      [--default-deadline-ms <n>] [--max-deadline-ms <n>]
                      [--retry-after-s <n>] [--admission-limit <n>]
                      [--watch-interval-ms <n>]
  metablink lint      [--root <dir>] [--baseline <file>] [--json] [--update-baseline]
                      [--cache <file>] [--no-cache] [--timing] [--threads <n>]
  metablink lint      --explain <rule>

serve runs an HTTP server over the trained model: POST /link answers
linking requests (adaptive micro-batching fuses concurrent requests
into one forward pass), GET /healthz and GET /metrics report status,
POST /admin/reload hot-swaps the next model.mbc generation without
dropping requests, POST /admin/shutdown drains in-flight work and
exits. --addr defaults to 127.0.0.1:7878; port 0 picks an ephemeral
port, and --addr-file writes the bound address for scripts to discover
it. The resilience knobs mirror mb_serve::ServeConfig: per-request
deadline budgets (clients may send \"deadline_ms\", capped by
--max-deadline-ms) shed queued work with 503 + Retry-After once they
cannot be met, --admission-limit bounds requests inside the server
(0 sizes it from the queue), and --watch-interval-ms polls model.mbc
and reloads on change (0 disables).

lint runs the in-repo static-analysis pass (panic-freedom,
determinism, lock discipline, unsafe gate, plus interprocedural
panic-reach / det-taint / lock-across-call / alloc-in-hot-loop over
the workspace call graph) on the workspace's own sources. --explain
<rule> prints what a rule means, why it exists, and how to fix or
audit a finding. Per-file summaries are cached (--cache, default
target/mb-lint/lint-cache.txt) so warm runs skip unchanged files;
reports are byte-identical with or without the cache and at any
--threads count. `metablink lint --help` lists all flags.

train, evaluate and serve accept --threads <n> (default: the
MB_THREADS environment variable, else 1) to fan work out over worker
threads. Results are bit-identical for every thread count: all
parallel paths partition by data, never by worker count.";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            map.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    map
}

fn flag<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

/// Worker-thread count: `--threads` flag, else the `MB_THREADS`
/// environment variable, else 1. This is the *only* place the process
/// environment feeds a thread count — libraries take an explicit
/// [`metablink::par::Threads`] and never read ambient state, so any
/// value here changes throughput but never results.
fn threads_flag(opts: &HashMap<String, String>) -> Result<metablink::par::Threads, String> {
    let n: usize = match opts.get("threads") {
        Some(v) => v.parse().map_err(|e| format!("--threads: {e}"))?,
        None => match std::env::var("MB_THREADS") {
            Ok(v) => v.parse().map_err(|e| format!("MB_THREADS: {e}"))?,
            Err(_) => 1,
        },
    };
    if n == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(metablink::par::Threads::new(n))
}

fn context(seed: u64, scale: &str) -> Result<ExperimentContext, String> {
    let cfg = match scale {
        "small" => ContextConfig::small(seed),
        "bench" => ContextConfig::bench_default(seed),
        other => return Err(format!("unknown scale {other:?} (small|bench)")),
    };
    eprintln!("generating benchmark (seed {seed}, scale {scale}) …");
    Ok(ExperimentContext::build(cfg))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(opts, "seed", "42").parse().map_err(|e| format!("--seed: {e}"))?;
    let ctx = context(seed, flag(opts, "scale", "small"))?;
    let world = ctx.dataset.world();
    println!("{:<20} {:>9} {:>9} {:>9}", "domain", "entities", "mentions", "role");
    for d in world.domains() {
        let role = format!("{:?}", d.role);
        println!(
            "{:<20} {:>9} {:>9} {:>9}",
            d.name,
            world.kb().domain_entities(d.id).len(),
            ctx.dataset.mentions(&d.name).len(),
            role
        );
    }
    for name in ctx.test_domains() {
        let syn = ctx.syn_of(&name);
        println!(
            "synthetic[{name}]: {} exact-match pairs, {} rewritten ({:.1}% noise)",
            syn.exact.len(),
            syn.rewritten.len(),
            100.0 * syn.noise_rate()
        );
    }
    Ok(())
}

fn parse_method(s: &str) -> Result<Method, String> {
    match s {
        "blink" => Ok(Method::Blink),
        "dl4el" => Ok(Method::Dl4el),
        "metablink" => Ok(Method::MetaBlink),
        other => Err(format!("unknown method {other:?}")),
    }
}

fn parse_source(s: &str) -> Result<DataSource, String> {
    match s.to_lowercase().as_str() {
        "seed" => Ok(DataSource::Seed),
        "exact" | "exact-match" => Ok(DataSource::ExactMatch),
        "syn" => Ok(DataSource::Syn),
        "syn*" => Ok(DataSource::SynStar),
        "syn+seed" => Ok(DataSource::SynSeed),
        "syn*+seed" => Ok(DataSource::SynStarSeed),
        "general" => Ok(DataSource::General),
        "general+seed" => Ok(DataSource::GeneralSeed),
        "general+syn+seed" => Ok(DataSource::GeneralSynSeed),
        "general+syn*+seed" => Ok(DataSource::GeneralSynStarSeed),
        other => Err(format!("unknown source {other:?}")),
    }
}

/// Manifest tying a checkpoint to its (regenerable) benchmark.
struct Manifest {
    seed: u64,
    scale: String,
    domain: String,
}

impl Manifest {
    fn save(&self, dir: &Path) -> Result<(), String> {
        let text = format!("seed={}\nscale={}\ndomain={}\n", self.seed, self.scale, self.domain);
        std::fs::write(dir.join("manifest.txt"), text).map_err(|e| e.to_string())
    }

    fn load(dir: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(dir.join("manifest.txt")).map_err(|e| e.to_string())?;
        let mut map = HashMap::new();
        for line in text.lines() {
            if let Some((k, v)) = line.split_once('=') {
                map.insert(k.to_string(), v.to_string());
            }
        }
        Ok(Manifest {
            seed: map.get("seed").and_then(|s| s.parse().ok()).ok_or("manifest: bad seed")?,
            scale: map.get("scale").cloned().ok_or("manifest: missing scale")?,
            domain: map.get("domain").cloned().ok_or("manifest: missing domain")?,
        })
    }
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(opts, "seed", "42").parse().map_err(|e| format!("--seed: {e}"))?;
    let scale = flag(opts, "scale", "small").to_string();
    let domain = flag(opts, "domain", "Lego").to_string();
    let method = parse_method(flag(opts, "method", "metablink"))?;
    let source = parse_source(flag(opts, "source", "syn+seed"))?;
    let out = PathBuf::from(flag(opts, "out", "metablink_model"));

    let ctx = context(seed, &scale)?;
    if !ctx.test_domains().contains(&domain) {
        return Err(format!("{domain:?} is not a test domain ({:?})", ctx.test_domains()));
    }
    let task = ctx.task(&domain);
    let mut cfg =
        if scale == "bench" { MetaBlinkConfig::default() } else { MetaBlinkConfig::fast_test() };
    cfg.set_threads(threads_flag(opts)?);
    eprintln!("training {} on {} ({domain}) …", method.label(), source.label());
    let model = train(&task, method, source, &cfg);
    let metrics = model.evaluate(&task, &ctx.dataset.split(&domain).test);
    println!(
        "test: R@{} {:.2}%  N.Acc {:.2}%  U.Acc {:.2}%",
        cfg.linker.k, metrics.recall_at_k, metrics.normalized_acc, metrics.unnormalized_acc
    );

    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    serialize::save(model.bi.params(), &out.join("biencoder.mbp")).map_err(|e| e.to_string())?;
    serialize::save(model.cross.params(), &out.join("crossencoder.mbp"))
        .map_err(|e| e.to_string())?;
    // Also write the v2 sectioned checkpoint `serve` prefers: one file,
    // per-section CRCs, both encoders under their pipeline keys.
    let mut ck = Checkpoint::new();
    ck.params.insert(BI_KEY.to_string(), model.bi.params().clone());
    ck.params.insert(CROSS_KEY.to_string(), model.cross.params().clone());
    ck.save(&mut DiskStorage::new(), &out.join("model.mbc")).map_err(|e| e.to_string())?;
    Manifest { seed, scale, domain }.save(&out)?;
    println!("model written to {}", out.display());
    Ok(())
}

/// Rebuild the context and models from a checkpoint directory.
fn load_model(dir: &Path) -> Result<(ExperimentContext, String, BiEncoder, CrossEncoder), String> {
    let manifest = Manifest::load(dir)?;
    let ctx = context(manifest.seed, &manifest.scale)?;
    let cfg = if manifest.scale == "bench" {
        MetaBlinkConfig::default()
    } else {
        MetaBlinkConfig::fast_test()
    };
    let mut bi = BiEncoder::new(&ctx.vocab, cfg.bi, &mut Rng::seed_from_u64(0));
    bi.set_params(serialize::load(&dir.join("biencoder.mbp")).map_err(|e| e.to_string())?);
    let mut cross = CrossEncoder::new(&ctx.vocab, cfg.cross, &mut Rng::seed_from_u64(0));
    cross.set_params(serialize::load(&dir.join("crossencoder.mbp")).map_err(|e| e.to_string())?);
    Ok((ctx, manifest.domain, bi, cross))
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = PathBuf::from(flag(opts, "model", "metablink_model"));
    let limit: usize = flag(opts, "limit", "0").parse().map_err(|e| format!("--limit: {e}"))?;
    let threads = threads_flag(opts)?;
    let (ctx, domain, bi, cross) = load_model(&dir)?;
    let world = ctx.dataset.world();
    let dom = world.domain_checked(&domain).map_err(|e| e.to_string())?;
    let linker = TwoStageLinker::new(
        &bi,
        &cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(dom.id),
        LinkerConfig { threads, ..LinkerConfig::default() },
    );
    let test = &ctx.dataset.split(&domain).test;
    let test = if limit > 0 && limit < test.len() { &test[..limit] } else { test };
    let m = linker.evaluate_parallel(test, threads).map_err(|e| e.to_string())?;
    println!(
        "{domain}: {} mentions  R@64 {:.2}%  N.Acc {:.2}%  U.Acc {:.2}%",
        m.count, m.recall_at_k, m.normalized_acc, m.unnormalized_acc
    );
    Ok(())
}

/// Load the checkpoint for serving: the v2 `model.mbc` when present,
/// otherwise the legacy per-encoder `.mbp` files assembled into an
/// in-memory [`Checkpoint`].
fn load_checkpoint(dir: &Path) -> Result<Checkpoint, String> {
    let v2 = dir.join("model.mbc");
    if v2.exists() {
        return Checkpoint::load(&mut DiskStorage::new(), &v2).map_err(|e| e.to_string());
    }
    let mut ck = Checkpoint::new();
    let bi = serialize::load(&dir.join("biencoder.mbp")).map_err(|e| e.to_string())?;
    let cross = serialize::load(&dir.join("crossencoder.mbp")).map_err(|e| e.to_string())?;
    ck.params.insert(BI_KEY.to_string(), bi);
    ck.params.insert(CROSS_KEY.to_string(), cross);
    Ok(ck)
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = PathBuf::from(flag(opts, "model", "metablink_model"));
    let defaults = ServerConfig::default();
    let num = |key: &str, default: usize| -> Result<usize, String> {
        flag(opts, key, &default.to_string()).parse().map_err(|e| format!("--{key}: {e}"))
    };
    let snum = |key: &str, default: u64| -> Result<u64, String> {
        flag(opts, key, &default.to_string()).parse().map_err(|e| format!("--{key}: {e}"))
    };
    let serve_defaults = defaults.serve;
    let cfg = ServerConfig {
        addr: flag(opts, "addr", "127.0.0.1:7878").to_string(),
        max_batch: num("max-batch", defaults.max_batch)?,
        max_delay_us: num("max-delay-us", defaults.max_delay_us as usize)? as u64,
        queue_capacity: num("queue-capacity", defaults.queue_capacity)?,
        cache_capacity: num("cache-capacity", defaults.cache_capacity)?,
        workers: num("workers", defaults.workers)?,
        serve: ServeConfig {
            read_timeout_ms: snum("read-timeout-ms", serve_defaults.read_timeout_ms)?,
            reply_timeout_ms: snum("reply-timeout-ms", serve_defaults.reply_timeout_ms)?,
            default_deadline_ms: snum("default-deadline-ms", serve_defaults.default_deadline_ms)?,
            max_deadline_ms: snum("max-deadline-ms", serve_defaults.max_deadline_ms)?,
            retry_after_s: snum("retry-after-s", serve_defaults.retry_after_s)?,
            admission_limit: snum("admission-limit", serve_defaults.admission_limit)?,
            watch_interval_ms: snum("watch-interval-ms", serve_defaults.watch_interval_ms)?,
        },
        ..defaults
    };

    let manifest = Manifest::load(&dir)?;
    let ctx = context(manifest.seed, &manifest.scale)?;
    let mut train_cfg = if manifest.scale == "bench" {
        MetaBlinkConfig::default()
    } else {
        MetaBlinkConfig::fast_test()
    };
    // Intra-batch parallelism for the linker the server wraps; the
    // server's own `--workers` knob controls batch-level concurrency.
    train_cfg.linker.threads = threads_flag(opts)?;
    let ck = load_checkpoint(&dir)?;
    let world = ctx.dataset.world();
    let dom = world.domain_checked(&manifest.domain).map_err(|e| e.to_string())?;
    eprintln!(
        "precomputing entity index ({} entities) …",
        world.kb().domain_entities(dom.id).len()
    );
    let vocab = ctx.vocab.clone();
    let kb = world.kb().clone();
    let dictionary = world.kb().domain_entities(dom.id).to_vec();
    let domain_name = manifest.domain.clone();
    let model = ServeModel::from_checkpoint(
        &ck,
        vocab.clone(),
        kb.clone(),
        dictionary.clone(),
        domain_name.clone(),
        train_cfg.bi,
        train_cfg.cross,
        train_cfg.linker,
    )
    .map_err(|e| e.to_string())?;

    // Hot reloads rebuild the model from the same world context; the
    // v2 loader's per-section CRCs reject corrupt candidates before a
    // swap is attempted.
    let source = dir.join("model.mbc");
    let loader: ModelLoader = Box::new(move |path: &Path| {
        let ck = Checkpoint::load(&mut DiskStorage::new(), path)?;
        ServeModel::from_checkpoint(
            &ck,
            vocab.clone(),
            kb.clone(),
            dictionary.clone(),
            domain_name.clone(),
            train_cfg.bi,
            train_cfg.cross,
            train_cfg.linker,
        )
    });
    let registry = ModelRegistry::with_loader(model, source, loader).map_err(|e| e.to_string())?;
    let server = Server::start_with_registry(registry, cfg).map_err(|e| e.to_string())?;
    let addr = server.addr();
    if let Some(path) = opts.get("addr-file") {
        std::fs::write(path, addr.to_string()).map_err(|e| e.to_string())?;
    }
    println!(
        "serving {} on http://{addr} (POST /link; POST /admin/shutdown to stop)",
        manifest.domain
    );
    server.join();
    println!("drained; bye");
    Ok(())
}

fn cmd_link(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = PathBuf::from(flag(opts, "model", "metablink_model"));
    let surface = flag(opts, "surface", "").to_string();
    if surface.is_empty() {
        return Err("--surface is required".into());
    }
    let left = flag(opts, "left", "").to_string();
    let right = flag(opts, "right", "").to_string();
    let k: usize = flag(opts, "k", "5").parse().map_err(|e| format!("--k: {e}"))?;

    let (ctx, domain, bi, cross) = load_model(&dir)?;
    let world = ctx.dataset.world();
    let dom = world.domain_checked(&domain).map_err(|e| e.to_string())?;
    let linker = TwoStageLinker::new(
        &bi,
        &cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(dom.id),
        LinkerConfig::default(),
    );
    let mention = LinkedMention {
        left,
        surface,
        right,
        entity: mb_kb::EntityId(0), // unknown; only used for gold marking
        category: OverlapCategory::LowOverlap,
    };
    let retrieved = linker.candidates(&mention);
    let set = linker.candidate_set(&mention, &retrieved);
    let scores = cross.score(&set);
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top candidates in {domain}:");
    for (rank, (idx, score)) in ranked.into_iter().take(k).enumerate() {
        let e = world.kb().entity(retrieved[idx].0);
        let mut desc = e.description.clone();
        desc.truncate(60);
        println!("  {:>2}. {:<30} {score:>8.3}  {desc}…", rank + 1, e.title);
    }
    Ok(())
}
