//! Cross-crate integration tests: the full pipeline at small scale.
//!
//! A single small [`ExperimentContext`] is shared across tests through
//! a `OnceLock` so the expensive setup (world generation, rewriter
//! training, synthetic data) runs once.

use metablink::core::baselines::name_matching_accuracy;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::eval::{ContextConfig, ExperimentContext};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ContextConfig::small(11)))
}

#[test]
fn context_has_all_test_domains_and_splits() {
    let c = ctx();
    let domains = c.test_domains();
    assert_eq!(domains.len(), 4);
    for d in &domains {
        let split = c.dataset.split(d);
        assert_eq!(split.seed.len(), 50);
        assert_eq!(split.dev.len(), 50);
        assert!(!split.test.is_empty());
        assert!(!c.syn_of(d).rewritten.is_empty());
    }
}

#[test]
fn metablink_end_to_end_beats_name_matching() {
    let c = ctx();
    let domain = "Lego";
    let task = c.task(domain);
    let split = c.dataset.split(domain);
    let cfg = MetaBlinkConfig::fast_test();
    let model = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);
    let metrics = model.evaluate(&task, &split.test);
    let nm = name_matching_accuracy(c.dataset.world().kb(), task.domain.id, &split.test);
    assert!(
        metrics.unnormalized_acc > nm,
        "MetaBLINK {:.2} should beat Name Matching {:.2}",
        metrics.unnormalized_acc,
        nm
    );
    // Metric identities.
    assert!(metrics.recall_at_k >= metrics.unnormalized_acc);
    assert!((0.0..=100.0).contains(&metrics.normalized_acc));
    assert_eq!(metrics.count, split.test.len());
}

#[test]
fn combining_synthetic_and_seed_does_not_hurt() {
    // The paper's Tables V/VI: Syn+Seed dominates Seed-only. At this
    // small integration scale we assert the non-strict version.
    let c = ctx();
    let domain = "YuGiOh";
    let task = c.task(domain);
    let split = c.dataset.split(domain);
    let cfg = MetaBlinkConfig::fast_test();
    let seed_only =
        train(&task, Method::Blink, DataSource::Seed, &cfg).evaluate(&task, &split.test);
    let combined =
        train(&task, Method::Blink, DataSource::SynSeed, &cfg).evaluate(&task, &split.test);
    assert!(
        combined.unnormalized_acc + 5.0 > seed_only.unnormalized_acc,
        "Syn+Seed {:.2} far below Seed-only {:.2}",
        combined.unnormalized_acc,
        seed_only.unnormalized_acc
    );
}

#[test]
fn training_is_deterministic_in_the_seed() {
    let c = ctx();
    let domain = "Forgotten Realms";
    let task = c.task(domain);
    let split = c.dataset.split(domain);
    let cfg = MetaBlinkConfig::fast_test();
    let a = train(&task, Method::Blink, DataSource::SynSeed, &cfg).evaluate(&task, &split.test);
    let b = train(&task, Method::Blink, DataSource::SynSeed, &cfg).evaluate(&task, &split.test);
    assert_eq!(a.recall_at_k, b.recall_at_k);
    assert_eq!(a.unnormalized_acc, b.unnormalized_acc);
}

#[test]
fn dl4el_runs_and_stays_finite() {
    let c = ctx();
    let domain = "Star Trek";
    let task = c.task(domain);
    let split = c.dataset.split(domain);
    let cfg = MetaBlinkConfig::fast_test();
    let model = train(&task, Method::Dl4el, DataSource::SynSeed, &cfg);
    assert!(!model.bi.params().has_non_finite());
    let m = model.evaluate(&task, &split.test[..60.min(split.test.len())]);
    assert!(m.unnormalized_acc.is_finite());
}
