//! Checkpointing round-trips across the facade API.

use metablink::common::Rng;
use metablink::datagen::{mentions::generate_mentions, World, WorldConfig};
use metablink::encoders::biencoder::{BiEncoder, BiEncoderConfig};
use metablink::encoders::input::{build_vocab, InputConfig, TrainPair};
use metablink::tensor::serialize;

#[test]
fn biencoder_checkpoint_round_trip_preserves_behaviour() {
    let world = World::generate(WorldConfig::tiny(61));
    let vocab = build_vocab(world.kb(), [], 1);
    let cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
    let model = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(1));

    // Serialize → parse → install into a differently-initialised model.
    let text = serialize::to_string(model.params()).expect("finite params serialize");
    let restored = serialize::from_string(&text).expect("parse own output");
    let mut other = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(999));
    other.set_params(restored);

    let domain = world.domain("TargetX").clone();
    let ms = generate_mentions(&world, &domain, 12, &mut Rng::seed_from_u64(2));
    let icfg = InputConfig::default();
    let bags: Vec<Vec<u32>> = ms
        .mentions
        .iter()
        .map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m).mention)
        .collect();
    assert_eq!(model.embed_mentions(bags.clone()), other.embed_mentions(bags));
}

#[test]
fn checkpoint_file_round_trip() {
    let world = World::generate(WorldConfig::tiny(62));
    let vocab = build_vocab(world.kb(), [], 1);
    let cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
    let model = BiEncoder::new(&vocab, cfg, &mut Rng::seed_from_u64(3));
    let dir = std::env::temp_dir().join("metablink_integration_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bi.mbp");
    serialize::save(model.params(), &path).unwrap();
    let loaded = serialize::load(&path).unwrap();
    assert_eq!(&loaded, model.params());
    std::fs::remove_file(&path).ok();
}
