//! Integration tests of the future-work extensions (NIL prediction,
//! document coherence, per-category breakdown) through the facade.

use metablink::common::Rng;
use metablink::core::coherence::{link_document, relatedness, CoherenceConfig};
use metablink::core::nil::{NilAwareLinker, NilDecision};
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::core::{LinkerConfig, TwoStageLinker};
use metablink::datagen::mentions::generate_mentions;
use metablink::eval::{CategoryBreakdown, ContextConfig, ExperimentContext};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ContextConfig::small(17)))
}

fn model() -> &'static metablink::core::pipeline::TrainedLinker {
    static MODEL: OnceLock<metablink::core::pipeline::TrainedLinker> = OnceLock::new();
    MODEL.get_or_init(|| {
        let task = ctx().task("Lego");
        train(&task, Method::MetaBlink, DataSource::SynSeed, &MetaBlinkConfig::fast_test())
    })
}

fn linker() -> TwoStageLinker<'static> {
    let c = ctx();
    let m = model();
    let dom = c.dataset.world().domain("Lego");
    TwoStageLinker::new(
        &m.bi,
        &m.cross,
        &c.vocab,
        c.dataset.world().kb(),
        c.dataset.world().kb().domain_entities(dom.id),
        LinkerConfig { k: 16, ..m.linker_cfg },
    )
}

#[test]
fn nil_calibration_detects_out_of_kb_mentions() {
    let c = ctx();
    let l = linker();
    let split = c.dataset.split("Lego");
    // Out-of-KB pool: mentions from a different domain.
    let foreign = c.dataset.world().domain("YuGiOh").clone();
    let mut rng = Rng::seed_from_u64(3);
    let nil_pool = generate_mentions(c.dataset.world(), &foreign, 60, &mut rng).mentions;
    let nil_aware = NilAwareLinker::calibrate(&l, &split.dev, &nil_pool[..30], 30);
    let metrics = nil_aware.evaluate(&split.test, &nil_pool[30..]);
    assert!(metrics.nil_accuracy() > 0.2, "NIL detection {:.3}", metrics.nil_accuracy());
    // Decisions are well-formed.
    match nil_aware.predict(&split.test[0]) {
        NilDecision::Linked(_, score) => assert!(score.is_finite()),
        NilDecision::Nil => {}
    }
}

#[test]
fn coherence_produces_in_dictionary_predictions() {
    let c = ctx();
    let l = linker();
    let world = c.dataset.world();
    let dom = world.domain("Lego");
    let dict = world.kb().domain_entities(dom.id);
    let mut rng = Rng::seed_from_u64(5);
    let doc = generate_mentions(world, dom, 6, &mut rng).mentions;
    let out = link_document(&l, &doc, &CoherenceConfig::default());
    assert_eq!(out.len(), 6);
    for o in out.into_iter().flatten() {
        assert!(dict.contains(&o));
    }
    // Relatedness is symmetric-ish at the extremes.
    assert_eq!(relatedness(world.kb(), dict[0], dict[0]), 1.0);
}

#[test]
fn category_breakdown_partitions_the_test_set() {
    let c = ctx();
    let l = linker();
    let split = c.dataset.split("Lego");
    let b = CategoryBreakdown::evaluate(&l, &split.test);
    let sum: usize = b.per_category.iter().map(|(_, m)| m.count).sum();
    assert_eq!(sum, split.test.len());
    assert!(b.shortcut_spread() >= 0.0);
    assert!(!b.to_table("t").is_empty());
}
