//! Integration tests of the weak-supervision chain
//! (exact matching → rewriting → seed mining) across crates.

use metablink::core::seed::{mine_zero_shot_seed, self_match_seeds, SeedFilterConfig};
use metablink::eval::{ContextConfig, ExperimentContext};
use metablink::nlg::SynSource;
use metablink::text::rouge::paired_rouge1_f1;
use metablink::text::OverlapCategory;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(ContextConfig::small(13)))
}

#[test]
fn exact_match_pairs_are_trivial_and_rewritten_are_not() {
    let c = ctx();
    for d in c.test_domains() {
        let syn = c.syn_of(&d);
        assert!(syn.exact.iter().all(|p| p.mention.category == OverlapCategory::HighOverlap));
        let high = syn
            .rewritten
            .iter()
            .filter(|p| p.mention.category == OverlapCategory::HighOverlap)
            .count();
        assert!(
            high * 2 < syn.rewritten.len().max(1),
            "{d}: {high}/{} rewritten pairs still high-overlap",
            syn.rewritten.len()
        );
    }
}

#[test]
fn rewritten_mentions_closer_to_gold_distribution() {
    // The Table XI invariant at integration scale: per-entity paired
    // ROUGE-1 of syn beats exact match on most domains.
    let c = ctx();
    let mut wins = 0;
    let mut total = 0;
    for d in c.test_domains() {
        let gold = &c.dataset.mentions(&d).mentions;
        let syn = c.syn_of(&d);
        fn pairs_of<'a>(
            src: &'a [metablink::nlg::SynPair],
            gold: &'a [metablink::datagen::LinkedMention],
        ) -> Vec<(&'a str, &'a str)> {
            let mut out = Vec::new();
            for p in src {
                for g in gold.iter().filter(|g| g.entity == p.mention.entity) {
                    out.push((p.mention.surface.as_str(), g.surface.as_str()));
                }
            }
            out
        }
        let exact = paired_rouge1_f1(&pairs_of(&syn.exact, gold));
        let rewritten = paired_rouge1_f1(&pairs_of(&syn.rewritten, gold));
        total += 1;
        if rewritten > exact {
            wins += 1;
        }
    }
    assert!(wins * 2 > total, "syn beat exact on only {wins}/{total} domains");
}

#[test]
fn zero_shot_seed_mining_produces_clean_labels() {
    let c = ctx();
    let world = c.dataset.world();
    let d = world.domain("YuGiOh");
    let ids = world.kb().domain_entities(d.id);
    let self_matched = self_match_seeds(world.kb(), ids);
    // Self-matched seeds are exact by construction.
    for s in &self_matched {
        assert_eq!(s.text(), world.kb().entity(s.entity).description);
    }
    let mined = mine_zero_shot_seed(
        world.kb(),
        &c.vocab,
        ids,
        &c.syn_of("YuGiOh").rewritten,
        &SeedFilterConfig::default(),
        40,
    );
    assert!(!mined.is_empty());
    assert!(mined.len() <= 40);
    for s in &mined {
        assert_eq!(world.kb().entity(s.entity).domain, d.id);
    }
}

#[test]
fn syn_star_differs_from_syn_only_in_surfaces() {
    let c = ctx();
    let d = &c.test_domains()[0];
    let syn = c.syn_of(d);
    let star = c.syn_star_of(d);
    assert_eq!(syn.rewritten.len(), star.rewritten.len());
    let mut changed = 0;
    for (a, b) in syn.rewritten.iter().zip(&star.rewritten) {
        assert_eq!(a.mention.entity, b.mention.entity);
        assert_eq!(a.mention.left, b.mention.left);
        if a.mention.surface != b.mention.surface {
            changed += 1;
        }
        assert_eq!(a.source, SynSource::Rewritten);
    }
    // Adaptation changes some but not all rewrites.
    assert!(changed < syn.rewritten.len(), "all surfaces changed");
}

#[test]
fn noise_rate_is_plausible() {
    let c = ctx();
    for d in c.test_domains() {
        let rate = c.syn_of(&d).noise_rate();
        assert!((0.0..0.5).contains(&rate), "{d}: noise rate {rate}");
    }
}
