//! CI drift enforcement: `scripts/ci.sh` and `.github/workflows/ci.yml`
//! must run the same commands in the same order.
//!
//! The shell script is the source of truth for local runs and prints
//! its step list via `--list-steps`; this test diffs that list against
//! the workflow's `- run:` lines (setup lines like `rustup component
//! add` excepted). Before this test existed the two files carried a
//! "keep in sync" comment — now divergence fails the build instead.

use std::process::Command;

/// Step commands as `scripts/ci.sh --list-steps` prints them.
fn script_steps() -> Vec<String> {
    let out = Command::new("bash")
        .arg("scripts/ci.sh")
        .arg("--list-steps")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn scripts/ci.sh --list-steps");
    assert!(
        out.status.success(),
        "scripts/ci.sh --list-steps failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("--list-steps output is not UTF-8")
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect()
}

/// Step commands from the workflow's `- run:` lines, top to bottom,
/// with environment-setup lines (`rustup component add`) excluded —
/// those install toolchain components on the ephemeral CI runner and
/// have no local equivalent.
fn workflow_steps() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/.github/workflows/ci.yml");
    let yml = std::fs::read_to_string(path).expect("cannot read .github/workflows/ci.yml");
    yml.lines()
        .filter_map(|line| line.trim().strip_prefix("- run:"))
        .map(|cmd| cmd.trim().to_string())
        .filter(|cmd| !cmd.contains("rustup component add"))
        .collect()
}

#[test]
fn ci_script_and_workflow_run_the_same_steps_in_the_same_order() {
    let script = script_steps();
    let workflow = workflow_steps();
    assert!(!script.is_empty(), "scripts/ci.sh --list-steps printed nothing");
    assert_eq!(
        script, workflow,
        "scripts/ci.sh and .github/workflows/ci.yml have drifted;\n\
         left:  scripts/ci.sh --list-steps\n\
         right: ci.yml `- run:` lines (rustup setup lines excluded)"
    );
}

#[test]
fn ci_script_ends_with_the_bench_regression_gate() {
    let script = script_steps();
    assert_eq!(
        script.last().map(String::as_str),
        Some("scripts/bench_gate.sh"),
        "the bench-regression gate must stay the final CI step"
    );
}

#[test]
fn ci_script_includes_the_retrieval_smoke_stage() {
    let script = script_steps();
    let smoke = "cargo run --release -q -p mb-bench --bin bench_retrieval -- --smoke";
    let smoke_at = script.iter().position(|s| s == smoke);
    assert!(
        smoke_at.is_some(),
        "the retrieval-smoke stage must build a small sharded store and assert \
         recall + bit-identical rebuild (bench_retrieval --smoke)"
    );
    let gate_at = script.iter().position(|s| s == "scripts/bench_gate.sh");
    assert!(smoke_at < gate_at, "retrieval-smoke must run before the bench-regression gate");
}

#[test]
fn bench_baseline_pins_the_fused_batch_retrieval_benches() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench-baseline.json");
    let baseline = std::fs::read_to_string(path).expect("cannot read bench-baseline.json");
    for name in ["retrieval/store_ivf/top64_batch8", "retrieval/quant_i8/top64_batch8"] {
        assert!(
            baseline.contains(&format!("\"{name}\"")),
            "bench-baseline.json must pin {name}: the fused serving-drain retrieval \
             path (DESIGN.md \u{a7}16) is gated by scripts/bench_gate.sh"
        );
    }
}

#[test]
fn ci_script_runs_the_lint_cache_check_right_after_lint() {
    let script = script_steps();
    let lint = script.iter().position(|s| s == "cargo run -q -p mb-lint");
    let cache = script.iter().position(|s| s == "scripts/lint_cache_check.sh");
    assert!(lint.is_some(), "the lint stage must stay in CI");
    assert!(
        cache.is_some(),
        "the lint-cache stage must verify byte-identical --json across a cold and a warm run"
    );
    assert_eq!(
        cache,
        lint.map(|i| i + 1),
        "lint-cache must run immediately after lint so a cache bug is attributed correctly"
    );
}

#[test]
fn ci_script_includes_the_chaos_serve_stage() {
    let script = script_steps();
    assert!(
        script
            .iter()
            .any(|s| s == "cargo test --release -q -p mb-serve --test chaos -- --include-ignored"),
        "the chaos-serve stage must run the #[ignore]d mb-serve chaos suite in release"
    );
}
